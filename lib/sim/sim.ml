(** Instruction-level simulator: the stand-in for the paper's MIPS R2000 and
    its [pixie] tracing facility (§8).

    Executes a linked {!Asm.program} over a flat word-addressed memory and
    counts what pixie counted: executed cycles (one per instruction — pixie
    excludes cache and MMU effects), calls, and loads/stores broken down by
    the {!Asm.tag} assigned at code generation, from which the paper's
    "scalar loads/stores" metric is the [Tscalar] + [Tsave] + [Tcallsave]
    + [Tstackarg] traffic.

    With [check = true] (the default) the simulator also enforces each
    procedure's register-preservation contract: at every return it verifies
    the stack pointer is balanced, the return lands at the call site, and
    every register the callee's convention promises to preserve — the
    callee-saved set for open procedures, everything outside the published
    usage mask for closed ones — still holds its value from entry.  This is
    the dynamic proof that IPRA, shrink-wrapping and the around-call saves
    compose correctly.

    Two engines implement the same semantics.  {!run} is the pre-decoded
    threaded engine ({!Decode}): a one-time pass specializes the program
    into flat int-coded arrays interpreted by a tight jump-table loop with
    an allocation-free contract checker.  {!run_reference} is the original
    direct interpreter over {!Asm.inst} variants, retained as the
    executable specification; the differential test suite holds the two to
    identical outcomes — outputs, cycle counts, per-tag traffic, block
    profiles and [Runtime_error] messages — on every workload and on
    random programs. *)

module Machine = Chow_machine.Machine
module Asm = Chow_codegen.Asm
module Ir = Chow_ir.Ir

exception Runtime_error = Decode.Runtime_error

let error = Decode.error

type counters = {
  mutable cycles : int;
  mutable calls : int;
  loads : int array;  (** indexed by tag *)
  stores : int array;
}

let tag_index = Decode.tag_index

type outcome = Decode.outcome = {
  output : int list;
  cycles : int;
  calls : int;
  data_loads : int;
  data_stores : int;
  scalar_loads : int;  (** scalar + save/restore + stack-arg loads *)
  scalar_stores : int;
  save_loads : int;  (** the save/restore component alone, both kinds *)
  save_stores : int;
  call_save_loads : int;  (** the around-call subset of [save_loads] *)
  call_save_stores : int;
  block_counts : ((string * Ir.label) * int) list;
      (** execution count of each basic block, when run with
          [profile = true]; empty otherwise.  The raw material for the
          profile-feedback extension (§8 "future work"). *)
  proc_cycles : (string * int) list;
      (** cycles attributed to each procedure (address order, ["<stub>"]
          first when startup code ran), when run with [profile = true];
          empty otherwise *)
}

(** Pending activation for the contract checker (reference engine; the
    decoded engine keeps the same state in flat int arrays). *)
type activation = {
  return_pc : int;
  sp_at_entry : int;
  snapshot : (Machine.reg * int) list;
  callee : string;
}

(* [trap] raises the runtime error with the executing-pc context appended,
   so both engines word their arithmetic traps identically *)
let eval_binop ~trap op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then trap "division by zero" else a / b
  | Ir.Rem -> if b = 0 then trap "remainder by zero" else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> a lsl b
  | Ir.Shr -> a asr b

let eval_relop op a b =
  match op with
  | Ir.Eq -> a = b
  | Ir.Ne -> a <> b
  | Ir.Lt -> a < b
  | Ir.Le -> a <= b
  | Ir.Gt -> a > b
  | Ir.Ge -> a >= b

(** The original engine: direct interpretation of {!Asm.inst} variants.
    Kept as the executable specification the decoded engine is
    differentially tested against. *)
let run_reference ?(fuel = 500_000_000) ?(mem_words = 1 lsl 20)
    ?(check = true) ?(profile = false) (prog : Asm.program) : outcome =
  Chow_obs.Trace.span "sim-reference" @@ fun () ->
  let code = prog.Asm.code in
  let ncode = Array.length code in
  let pc_counts = if profile then Array.make ncode 0 else [||] in
  let mem = Array.make mem_words 0 in
  List.iter (fun (addr, v) -> mem.(addr) <- v) prog.Asm.data_init;
  let regs = Array.make Machine.nregs 0 in
  regs.(Machine.sp) <- mem_words;
  let get r = if r = Machine.zero then 0 else regs.(r) in
  let set r v = if r <> Machine.zero then regs.(r) <- v in
  let counters =
    { cycles = 0; calls = 0; loads = Array.make 5 0; stores = Array.make 5 0 }
  in
  let output = ref [] in
  let metas = Hashtbl.create 16 in
  List.iter (fun (pc, m) -> Hashtbl.replace metas pc m) prog.Asm.metas;
  let stack : activation list ref = ref [] in
  let pc = ref prog.Asm.entry in
  let mem_access addr =
    if addr < 0 || addr >= mem_words then
      error "memory access out of bounds: %d (pc %d, in %s)" addr !pc
        (Decode.proc_name_of prog !pc)
  in
  let trap what =
    error "%s (pc %d, in %s)" what !pc (Decode.proc_name_of prog !pc)
  in
  let do_call target_pc return_pc =
    counters.calls <- counters.calls + 1;
    if regs.(Machine.sp) <= prog.Asm.data_size + 64 then
      trap "stack overflow";
    if target_pc < 0 || target_pc >= ncode then
      error "call to invalid address %d (pc %d, in %s)" target_pc !pc
        (Decode.proc_name_of prog !pc);
    set Machine.ra return_pc;
    if check then begin
      let callee, preserved =
        match Hashtbl.find_opt metas target_pc with
        | Some m -> (m.Asm.m_name, m.Asm.m_preserved)
        | None when Hashtbl.length metas > 0 ->
            (* every legitimate call lands on a procedure entry; an indirect
               jump through a non-procedure value is a wild call *)
            error "call to %d, which is not a procedure entry (pc %d, in %s)"
              target_pc !pc
              (Decode.proc_name_of prog !pc)
        | None -> ("<unknown>", [])
      in
      stack :=
        {
          return_pc;
          sp_at_entry = regs.(Machine.sp);
          snapshot = List.map (fun r -> (r, get r)) preserved;
          callee;
        }
        :: !stack
    end;
    target_pc
  in
  let do_return () =
    let target = get Machine.ra in
    if check then begin
      match !stack with
      | [] -> trap "return with empty call stack"
      | act :: rest ->
          stack := rest;
          if target <> act.return_pc then
            error "%s: returned to %d, expected %d" act.callee target
              act.return_pc;
          if regs.(Machine.sp) <> act.sp_at_entry then
            error "%s: stack pointer not restored (%d <> %d)" act.callee
              regs.(Machine.sp) act.sp_at_entry;
          List.iter
            (fun (r, v) ->
              if get r <> v then
                error "%s: clobbered preserved register %s (%d <> %d)"
                  act.callee (Machine.name r) (get r) v)
            act.snapshot
    end;
    target
  in
  let running = ref true in
  while !running do
    if counters.cycles >= fuel then
      error "out of fuel after %d cycles (pc %d, in %s)" fuel !pc
        (Decode.proc_name_of prog !pc);
    if !pc < 0 || !pc >= ncode then error "pc out of range: %d" !pc;
    if profile then pc_counts.(!pc) <- pc_counts.(!pc) + 1;
    counters.cycles <- counters.cycles + 1;
    let next = !pc + 1 in
    (match code.(!pc) with
    | Asm.Li (r, n) -> set r n; pc := next
    | Asm.Lproc _ | Asm.Jal _ ->
        error "unlinked instruction at %d (in %s)" !pc
          (Decode.proc_name_of prog !pc)
    | Asm.Move (d, s) -> set d (get s); pc := next
    | Asm.Neg (d, s) -> set d (-get s); pc := next
    | Asm.Not (d, s) -> set d (if get s = 0 then 1 else 0); pc := next
    | Asm.Binop (op, d, a, b) ->
        set d (eval_binop ~trap op (get a) (get b));
        pc := next
    | Asm.Binopi (op, d, a, n) ->
        set d (eval_binop ~trap op (get a) n);
        pc := next
    | Asm.Cmp (op, d, a, b) ->
        set d (if eval_relop op (get a) (get b) then 1 else 0);
        pc := next
    | Asm.Cmpi (op, d, a, n) ->
        set d (if eval_relop op (get a) n then 1 else 0);
        pc := next
    | Asm.Lw (d, b, off, tag) ->
        let addr = get b + off in
        mem_access addr;
        set d mem.(addr);
        counters.loads.(tag_index tag) <- counters.loads.(tag_index tag) + 1;
        pc := next
    | Asm.Sw (s, b, off, tag) ->
        let addr = get b + off in
        mem_access addr;
        mem.(addr) <- get s;
        counters.stores.(tag_index tag) <- counters.stores.(tag_index tag) + 1;
        pc := next
    | Asm.B (op, a, b, l) ->
        pc := (if eval_relop op (get a) (get b) then l else next)
    | Asm.J l -> pc := l
    | Asm.Jal_pc t -> pc := do_call t next
    | Asm.Jalr r -> pc := do_call (get r) next
    | Asm.Jr -> pc := do_return ()
    | Asm.Print r -> output := get r :: !output; pc := next
    | Asm.Halt -> running := false)
  done;
  let block_counts =
    if profile then
      List.map (fun (pc, key) -> (key, pc_counts.(pc))) prog.Asm.block_pcs
    else []
  in
  let l = counters.loads and s = counters.stores in
  let outcome =
    {
      output = List.rev !output;
      cycles = counters.cycles;
      calls = counters.calls;
      data_loads = l.(0);
      data_stores = s.(0);
      scalar_loads = l.(1) + l.(2) + l.(3) + l.(4);
      scalar_stores = s.(1) + s.(2) + s.(3) + s.(4);
      save_loads = l.(2) + l.(3);
      save_stores = s.(2) + s.(3);
      call_save_loads = l.(3);
      call_save_stores = s.(3);
      block_counts;
      proc_cycles =
        (if profile then Decode.attribute_cycles prog pc_counts else []);
    }
  in
  Decode.publish_metrics outcome;
  outcome

(** The default engine: pre-decode once, then interpret the specialized
    form.  The decode cost is linear in code size and amortized over the
    run (it is included in every [run] call, not cached). *)
let run ?fuel ?mem_words ?check ?profile (prog : Asm.program) : outcome =
  let t = Chow_obs.Trace.span "decode" (fun () -> Decode.decode prog) in
  Chow_obs.Trace.span "sim" (fun () ->
      Decode.execute ?fuel ?mem_words ?check ?profile t)
