(** See profile.mli.

    The key economy: penalty *classification* is static per pc (the
    {!Asm.tag} split decides entry-save / exit-restore / call-site-save /
    call-site-restore / spill / stack-arg / data), so class totals and the
    around-call share of every call site come from the per-pc execution
    counts after the run — no per-instruction hook.  Only two things are
    dynamic and use the {!Decode.hooks} call-path probes: charging each
    activation's *contract* operations to the call site that created it
    (segment accounting over the running totals: contract traffic executes
    only while its activation is on top, so the delta between two
    call/return boundaries belongs to the frame on top in between), and
    the call tree itself. *)

module Asm = Chow_codegen.Asm
module Trace = Chow_obs.Trace
module Metrics = Chow_obs.Metrics

type counters = {
  entry_saves : int;
  exit_restores : int;
  call_saves : int;
  call_restores : int;
  spill_loads : int;
  spill_stores : int;
  stackarg_loads : int;
  stackarg_stores : int;
  data_loads : int;
  data_stores : int;
}

type site = {
  s_site : int;
  s_caller : string;
  s_callee : string;
  s_calls : int;
  s_entry_saves : int;
  s_exit_restores : int;
  s_call_saves : int;
  s_call_restores : int;
}

type node = {
  n_id : int;
  n_parent : int;
  n_depth : int;
  n_proc : string;
  n_site : int;
  n_calls : int;
  n_flat_cycles : int;
  n_cum_cycles : int;
  n_flat_penalty : int;
  n_cum_penalty : int;
}

type report = {
  outcome : Decode.outcome;
  counters : counters;
  sites : site list;
  calltree : node list;
  tree_capped : int;
}

let penalty_total c =
  c.entry_saves + c.exit_restores + c.call_saves + c.call_restores

let is_call = function Asm.Jal_pc _ | Asm.Jalr _ -> true | _ -> false

(* The call a [Tcallsave] operation brackets: emission places the saves
   immediately before their call and the restores immediately after it,
   with no other call in between, so the nearest call instruction after a
   save (before a restore) is the forcing site. *)
let site_of_callsave code pc ~store =
  let n = Array.length code in
  if store then begin
    let i = ref (pc + 1) in
    while !i < n && not (is_call code.(!i)) do
      incr i
    done;
    if !i < n then !i else -1
  end
  else begin
    let i = ref (pc - 1) in
    while !i >= 0 && not (is_call code.(!i)) do
      decr i
    done;
    !i
  end

(* nearest procedure entry at or below [pc] (cf. Decode.attribute_pc, but
   over a table computed once per run instead of per query) *)
let lookup entries names pc =
  let n = Array.length entries in
  if n = 0 then "<unknown>"
  else if pc < entries.(0) then "<stub>"
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if entries.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    names.(!lo)
  end

let m_p_entry_saves = Metrics.counter "sim.penalty.entry_saves"
let m_p_exit_restores = Metrics.counter "sim.penalty.exit_restores"
let m_p_call_saves = Metrics.counter "sim.penalty.call_saves"
let m_p_call_restores = Metrics.counter "sim.penalty.call_restores"
let m_p_spill_loads = Metrics.counter "sim.penalty.spill_loads"
let m_p_spill_stores = Metrics.counter "sim.penalty.spill_stores"
let m_p_stackarg_loads = Metrics.counter "sim.penalty.stackarg_loads"
let m_p_stackarg_stores = Metrics.counter "sim.penalty.stackarg_stores"
let m_p_tree_capped = Metrics.counter "sim.penalty.tree_capped"

let publish c =
  if Metrics.is_on () then begin
    Metrics.add m_p_entry_saves c.entry_saves;
    Metrics.add m_p_exit_restores c.exit_restores;
    Metrics.add m_p_call_saves c.call_saves;
    Metrics.add m_p_call_restores c.call_restores;
    Metrics.add m_p_spill_loads c.spill_loads;
    Metrics.add m_p_spill_stores c.spill_stores;
    Metrics.add m_p_stackarg_loads c.stackarg_loads;
    Metrics.add m_p_stackarg_stores c.stackarg_stores
  end

(* every distinct call path is one tree node; beyond [max_nodes] new paths
   collapse into their parent so branching recursion cannot explode *)
let default_max_nodes = 1 lsl 20

let run ?fuel ?mem_words ?check ?trace ?(trace_depth = 16)
    ?(trace_limit = 100_000) ?(max_nodes = default_max_nodes)
    (prog : Asm.program) : report =
  let code = prog.Asm.code in
  let ncode = Array.length code in
  let entries, names = Asm.proc_table prog in
  let proc_at pc = lookup entries names pc in
  let t = Trace.span "decode" (fun () -> Decode.decode prog) in
  let pc_buf = Array.make (max ncode 1) 0 in
  (* ----- call-tree nodes, id order = creation order (parents first) ----- *)
  let cap = ref 64 in
  let grow r pad n =
    let c = Array.length !r * 2 in
    let a = Array.make c pad in
    Array.blit !r 0 a 0 n;
    r := a
  in
  let nd_parent = ref (Array.make !cap (-1)) in
  let nd_site = ref (Array.make !cap (-1)) in
  let nd_name = ref (Array.make !cap "<program>") in
  let nd_depth = ref (Array.make !cap 0) in
  let nd_calls = ref (Array.make !cap 0) in
  let nd_flat_cyc = ref (Array.make !cap 0) in
  let nd_flat_pen = ref (Array.make !cap 0) in
  let n_nodes = ref 1 (* node 0: the root, "<program>" *) in
  let capped = ref 0 (* distinct call paths collapsed into their parent *) in
  let node_tbl : (int * int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let grow_nodes () =
    let n = !n_nodes in
    grow nd_parent (-1) n;
    grow nd_site (-1) n;
    grow nd_name "" n;
    grow nd_depth 0 n;
    grow nd_calls 0 n;
    grow nd_flat_cyc 0 n;
    grow nd_flat_pen 0 n;
    cap := Array.length !nd_parent
  in
  (* ----- activation stack mirrored by the profiler ----- *)
  let fcap = ref 64 in
  let st_site = ref (Array.make !fcap (-1)) in
  let st_node = ref (Array.make !fcap 0) in
  let st_es = ref (Array.make !fcap 0) in
  let st_xr = ref (Array.make !fcap 0) in
  let st_cyc0 = ref (Array.make !fcap 0) in
  let depth = ref 0 in
  let grow_frames () =
    let n = !depth in
    grow st_site (-1) n;
    grow st_node 0 n;
    grow st_es 0 n;
    grow st_xr 0 n;
    grow st_cyc0 0 n;
    fcap := Array.length !st_site
  in
  (* segment marks: the running totals at the previous call/return
     boundary; the delta since then belongs to the frame on top *)
  let seg_cs = ref 0 and seg_cr = ref 0 in
  let seg_as = ref 0 and seg_ar = ref 0 in
  let seg_cyc = ref 0 in
  (* per-site dynamic contract attribution, indexed by call-site pc *)
  let site_es = Array.make (max ncode 1) 0 in
  let site_xr = Array.make (max ncode 1) 0 in
  let flush cs cr as_ ar cyc =
    let node = if !depth = 0 then 0 else !st_node.(!depth - 1) in
    !nd_flat_cyc.(node) <- !nd_flat_cyc.(node) + (cyc - !seg_cyc);
    !nd_flat_pen.(node) <-
      !nd_flat_pen.(node)
      + (cs - !seg_cs) + (cr - !seg_cr) + (as_ - !seg_as) + (ar - !seg_ar);
    if !depth > 0 then begin
      let d = !depth - 1 in
      !st_es.(d) <- !st_es.(d) + (cs - !seg_cs);
      !st_xr.(d) <- !st_xr.(d) + (cr - !seg_cr)
    end;
    seg_cs := cs;
    seg_cr := cr;
    seg_as := as_;
    seg_ar := ar;
    seg_cyc := cyc
  in
  let tr = match trace with Some b -> b | None -> Trace.is_on () in
  let spans_emitted = ref 0 in
  (* spans are emitted when the activation ends, on the simulated
     timebase: 1 cycle = 1000 ns, i.e. 1 us in the trace viewer *)
  let emit_span d cyc_end =
    if
      tr
      && !spans_emitted < trace_limit
      && !nd_depth.(!st_node.(d)) <= trace_depth
    then begin
      incr spans_emitted;
      Trace.span_at
        ~args:[ ("site", Trace.Int !st_site.(d)) ]
        ~ts_ns:(!st_cyc0.(d) * 1000)
        ~dur_ns:((cyc_end - !st_cyc0.(d)) * 1000)
        !nd_name.(!st_node.(d))
    end
  in
  let pop_frame cyc =
    let d = !depth - 1 in
    depth := d;
    let s = !st_site.(d) in
    if s >= 0 && s < ncode then begin
      site_es.(s) <- site_es.(s) + !st_es.(d);
      site_xr.(s) <- site_xr.(s) + !st_xr.(d)
    end;
    emit_span d cyc
  in
  let hooks =
    {
      Decode.h_call =
        (fun ~site ~target ~cycles ~contract_saves ~contract_restores
             ~call_saves ~call_restores ->
          flush contract_saves contract_restores call_saves call_restores
            cycles;
          let parent = if !depth = 0 then 0 else !st_node.(!depth - 1) in
          let key = (parent, site, target) in
          let node =
            match Hashtbl.find_opt node_tbl key with
            | Some id -> id
            | None when !n_nodes >= max_nodes ->
                (* a new distinct path with no node left: its calls merge
                   into the parent, and the report must say so *)
                incr capped;
                parent
            | None ->
                let id = !n_nodes in
                if id = !cap then grow_nodes ();
                !nd_parent.(id) <- parent;
                !nd_site.(id) <- site;
                !nd_name.(id) <- proc_at target;
                !nd_depth.(id) <- !nd_depth.(parent) + 1;
                n_nodes := id + 1;
                Hashtbl.replace node_tbl key id;
                id
          in
          !nd_calls.(node) <- !nd_calls.(node) + 1;
          if !depth = !fcap then grow_frames ();
          let d = !depth in
          !st_site.(d) <- site;
          !st_node.(d) <- node;
          !st_es.(d) <- 0;
          !st_xr.(d) <- 0;
          (* the call instruction itself opens the callee's span *)
          !st_cyc0.(d) <- cycles - 1;
          depth := d + 1);
      Decode.h_return =
        (fun ~cycles ~contract_saves ~contract_restores ~call_saves
             ~call_restores ->
          flush contract_saves contract_restores call_saves call_restores
            cycles;
          if !depth > 0 then pop_frame cycles);
    }
  in
  let outcome =
    Trace.span "sim-profile" (fun () ->
        Decode.execute ?fuel ?mem_words ?check ~profile:true ~hooks ~pc_buf t)
  in
  (* the final segment (last boundary to halt) and frames still live at
     halt, settled from the outcome's final totals *)
  flush
    (outcome.Decode.save_stores - outcome.Decode.call_save_stores)
    (outcome.Decode.save_loads - outcome.Decode.call_save_loads)
    outcome.Decode.call_save_stores outcome.Decode.call_save_loads
    outcome.Decode.cycles;
  while !depth > 0 do
    pop_frame outcome.Decode.cycles
  done;
  (* ----- static classification over the per-pc counts ----- *)
  let c_es = ref 0 and c_xr = ref 0 in
  let c_as = ref 0 and c_ar = ref 0 in
  let c_sl = ref 0 and c_ss = ref 0 in
  let c_al = ref 0 and c_ast = ref 0 in
  let c_dl = ref 0 and c_ds = ref 0 in
  let site_as = Array.make (max ncode 1) 0 in
  let site_ar = Array.make (max ncode 1) 0 in
  let site_calls = Array.make (max ncode 1) 0 in
  for pc = 0 to ncode - 1 do
    let k = pc_buf.(pc) in
    if k > 0 then
      match code.(pc) with
      | Asm.Lw (_, _, _, Asm.Tsave) -> c_xr := !c_xr + k
      | Asm.Sw (_, _, _, Asm.Tsave) -> c_es := !c_es + k
      | Asm.Lw (_, _, _, Asm.Tcallsave) ->
          c_ar := !c_ar + k;
          let s = site_of_callsave code pc ~store:false in
          if s >= 0 then site_ar.(s) <- site_ar.(s) + k
      | Asm.Sw (_, _, _, Asm.Tcallsave) ->
          c_as := !c_as + k;
          let s = site_of_callsave code pc ~store:true in
          if s >= 0 then site_as.(s) <- site_as.(s) + k
      | Asm.Lw (_, _, _, Asm.Tscalar) -> c_sl := !c_sl + k
      | Asm.Sw (_, _, _, Asm.Tscalar) -> c_ss := !c_ss + k
      | Asm.Lw (_, _, _, Asm.Tstackarg) -> c_al := !c_al + k
      | Asm.Sw (_, _, _, Asm.Tstackarg) -> c_ast := !c_ast + k
      | Asm.Lw (_, _, _, Asm.Tdata) -> c_dl := !c_dl + k
      | Asm.Sw (_, _, _, Asm.Tdata) -> c_ds := !c_ds + k
      | Asm.Jal_pc _ | Asm.Jalr _ -> site_calls.(pc) <- k
      | _ -> ()
  done;
  let counters =
    {
      entry_saves = !c_es;
      exit_restores = !c_xr;
      call_saves = !c_as;
      call_restores = !c_ar;
      spill_loads = !c_sl;
      spill_stores = !c_ss;
      stackarg_loads = !c_al;
      stackarg_stores = !c_ast;
      data_loads = !c_dl;
      data_stores = !c_ds;
    }
  in
  publish counters;
  if Metrics.is_on () then Metrics.add m_p_tree_capped !capped;
  (* ----- per-site table ----- *)
  let sites = ref [] in
  for s = ncode - 1 downto 0 do
    if
      site_calls.(s) > 0
      || site_es.(s) + site_xr.(s) + site_as.(s) + site_ar.(s) > 0
    then
      sites :=
        {
          s_site = s;
          s_caller = proc_at s;
          s_callee =
            (match code.(s) with
            | Asm.Jal_pc tpc -> proc_at tpc
            | Asm.Jalr _ -> "<indirect>"
            | _ -> "?");
          s_calls = site_calls.(s);
          s_entry_saves = site_es.(s);
          s_exit_restores = site_xr.(s);
          s_call_saves = site_as.(s);
          s_call_restores = site_ar.(s);
        }
        :: !sites
  done;
  let site_weight s =
    s.s_entry_saves + s.s_exit_restores + s.s_call_saves + s.s_call_restores
  in
  let sites =
    List.sort
      (fun a b ->
        match compare (site_weight b) (site_weight a) with
        | 0 -> compare a.s_site b.s_site
        | c -> c)
      !sites
  in
  (* ----- call tree: cumulative pass (children have larger ids), then a
     preorder walk in creation order ----- *)
  let n = !n_nodes in
  !nd_calls.(0) <- 1;
  let cum_cyc = Array.init n (fun i -> !nd_flat_cyc.(i)) in
  let cum_pen = Array.init n (fun i -> !nd_flat_pen.(i)) in
  for id = n - 1 downto 1 do
    let p = !nd_parent.(id) in
    cum_cyc.(p) <- cum_cyc.(p) + cum_cyc.(id);
    cum_pen.(p) <- cum_pen.(p) + cum_pen.(id)
  done;
  let children = Array.make n [] in
  for id = n - 1 downto 1 do
    children.(!nd_parent.(id)) <- id :: children.(!nd_parent.(id))
  done;
  let order = ref [] in
  let stack = ref [ 0 ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | id :: rest ->
        order := id :: !order;
        stack := children.(id) @ rest
  done;
  let calltree =
    List.rev_map
      (fun id ->
        {
          n_id = id;
          n_parent = !nd_parent.(id);
          n_depth = !nd_depth.(id);
          n_proc = !nd_name.(id);
          n_site = !nd_site.(id);
          n_calls = !nd_calls.(id);
          n_flat_cycles = !nd_flat_cyc.(id);
          n_cum_cycles = cum_cyc.(id);
          n_flat_penalty = !nd_flat_pen.(id);
          n_cum_penalty = cum_pen.(id);
        })
      !order
  in
  { outcome; counters; sites; calltree; tree_capped = !capped }

(* ----- renderers ----- *)

let pp_penalty_report ?(limit = 20) ppf r =
  let c = r.counters in
  Format.fprintf ppf "@[<v>== dynamic penalty memory operations ==@,";
  let row name v = Format.fprintf ppf "%-26s %12d@," name v in
  row "entry saves (contract)" c.entry_saves;
  row "exit restores (contract)" c.exit_restores;
  row "call-site saves" c.call_saves;
  row "call-site restores" c.call_restores;
  row "save/restore total" (penalty_total c);
  row "spill loads" c.spill_loads;
  row "spill stores" c.spill_stores;
  row "stack-arg loads" c.stackarg_loads;
  row "stack-arg stores" c.stackarg_stores;
  row "data loads" c.data_loads;
  row "data stores" c.data_stores;
  let shown = min limit (List.length r.sites) in
  Format.fprintf ppf "@,== per call site (top %d of %d by save/restore ops) ==@,"
    shown (List.length r.sites);
  Format.fprintf ppf "%6s  %-16s %-16s %8s %9s %9s %9s %9s@," "site" "caller"
    "callee" "calls" "entry.sv" "exit.rs" "call.sv" "call.rs";
  List.iteri
    (fun i s ->
      if i < limit then
        Format.fprintf ppf "%6d  %-16s %-16s %8d %9d %9d %9d %9d@," s.s_site
          s.s_caller s.s_callee s.s_calls s.s_entry_saves s.s_exit_restores
          s.s_call_saves s.s_call_restores)
    r.sites;
  let omitted = List.length r.sites - shown in
  if omitted > 0 then
    Format.fprintf ppf "… %d more site%s omitted (raise --limit)@," omitted
      (if omitted = 1 then "" else "s");
  Format.fprintf ppf "@]"

let pp_calltree ?max_depth ppf r =
  let keep n =
    match max_depth with None -> true | Some d -> n.n_depth <= d
  in
  Format.fprintf ppf
    "@[<v>== call tree (calls, flat/cum cycles, flat/cum penalty ops) ==@,";
  Format.fprintf ppf "%9s %12s %12s %9s %9s  path@," "calls" "flat-cyc"
    "cum-cyc" "flat-pen" "cum-pen";
  List.iter
    (fun n ->
      if keep n then
        Format.fprintf ppf "%9d %12d %12d %9d %9d  %s%s%s@," n.n_calls
          n.n_flat_cycles n.n_cum_cycles n.n_flat_penalty n.n_cum_penalty
          (String.make (2 * n.n_depth) ' ')
          n.n_proc
          (if n.n_site >= 0 then Printf.sprintf " @%d" n.n_site else ""))
    r.calltree;
  if r.tree_capped > 0 then
    Format.fprintf ppf
      "… %d call%s on new paths collapsed into parent nodes (node cap)@,"
      r.tree_capped
      (if r.tree_capped = 1 then "" else "s");
  Format.fprintf ppf "@]"

(* ----- profile artifacts ("PWNP") -----

   The container mirrors {!Chow_codegen.Objfile}'s "PWNO" format: magic,
   little-endian u32 version and payload length, the payload's MD5
   digest, then an LEB128 payload.  Every read is bounds-checked and any
   damage — truncation, bit flips, version skew, trailing bytes — raises
   {!Corrupt} instead of mis-decoding into a plausible-but-wrong
   profile. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let magic = "PWNP"
let artifact_version = 1

type site_row = {
  r_caller : string;
  r_callee : string;
  r_ordinal : int;
  r_calls : int;
  r_penalty : int;
  r_cycles : int;
}

type artifact = {
  a_source_digest : string;
  a_config_fp : string;
  a_rows : site_row list;
}

let artifact ~source_digest ~config_fp (prog : Asm.program) (r : report) :
    artifact =
  let code = prog.Asm.code in
  let ncode = Array.length code in
  let entries, names = Asm.proc_table prog in
  (* call-site pc -> (caller, callee, ordinal).  The ordinal counts the
     caller's direct calls to the same callee in ascending pc order; the
     emitter lays blocks out in label order, so the same ordinal resolves
     the same site in the caller's IR (Inline.find_site). *)
  let site_tbl : (int, string * string * int) Hashtbl.t = Hashtbl.create 64 in
  let nprocs = Array.length entries in
  for i = 0 to nprocs - 1 do
    let hi = if i + 1 < nprocs then entries.(i + 1) else ncode in
    let ord : (string, int) Hashtbl.t = Hashtbl.create 8 in
    for pc = entries.(i) to hi - 1 do
      match code.(pc) with
      | Asm.Jal_pc t ->
          let callee = lookup entries names t in
          let o = Option.value ~default:0 (Hashtbl.find_opt ord callee) in
          Hashtbl.replace ord callee (o + 1);
          Hashtbl.replace site_tbl pc (names.(i), callee, o)
      | _ -> ()
    done
  done;
  (* cycles spent below each site, summed over the call-tree paths that
     pass through it — the tie-breaking rank signal after penalty *)
  let cyc : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if n.n_site >= 0 then
        Hashtbl.replace cyc n.n_site
          (n.n_cum_cycles
          + Option.value ~default:0 (Hashtbl.find_opt cyc n.n_site)))
    r.calltree;
  let rows =
    List.filter_map
      (fun s ->
        (* stub and jalr sites have no (caller, callee, ordinal) identity *)
        match Hashtbl.find_opt site_tbl s.s_site with
        | None -> None
        | Some (caller, callee, ordinal) ->
            Some
              {
                r_caller = caller;
                r_callee = callee;
                r_ordinal = ordinal;
                r_calls = s.s_calls;
                r_penalty =
                  s.s_entry_saves + s.s_exit_restores + s.s_call_saves
                  + s.s_call_restores;
                r_cycles =
                  Option.value ~default:0 (Hashtbl.find_opt cyc s.s_site);
              })
      r.sites
  in
  let rows =
    List.sort
      (fun a b ->
        match compare b.r_penalty a.r_penalty with
        | 0 -> (
            match compare b.r_cycles a.r_cycles with
            | 0 ->
                compare
                  (a.r_caller, a.r_callee, a.r_ordinal)
                  (b.r_caller, b.r_callee, b.r_ordinal)
            | c -> c)
        | c -> c)
      rows
  in
  { a_source_digest = source_digest; a_config_fp = config_fp; a_rows = rows }

(* primitive writers/readers, the Objfile idiom *)

let put_uvarint buf n =
  if n < 0 then invalid_arg "Profile: uvarint of negative";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let put_string buf s =
  put_uvarint buf (String.length s);
  Buffer.add_string buf s

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

type reader = { buf : string; mutable pos : int; limit : int }

let byte r =
  if r.pos >= r.limit then corrupt "truncated at offset %d" r.pos;
  let b = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  b

let get_uvarint r =
  let rec go shift acc count =
    if count > 9 then corrupt "varint too long at offset %d" r.pos;
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc (count + 1)
  in
  go 0 0 0

let get_string r =
  let n = get_uvarint r in
  if n > r.limit - r.pos then corrupt "string overruns payload (len %d)" n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let get_count r =
  let n = get_uvarint r in
  if n > r.limit - r.pos then corrupt "count %d overruns payload" n;
  n

let put_row buf row =
  put_string buf row.r_caller;
  put_string buf row.r_callee;
  put_uvarint buf row.r_ordinal;
  put_uvarint buf row.r_calls;
  put_uvarint buf row.r_penalty;
  put_uvarint buf row.r_cycles

let get_row r =
  let r_caller = get_string r in
  let r_callee = get_string r in
  let r_ordinal = get_uvarint r in
  let r_calls = get_uvarint r in
  let r_penalty = get_uvarint r in
  let r_cycles = get_uvarint r in
  { r_caller; r_callee; r_ordinal; r_calls; r_penalty; r_cycles }

let header_len = 4 + 4 + 4 + 16

let write_artifact (a : artifact) : string =
  let payload = Buffer.create 1024 in
  put_string payload a.a_source_digest;
  put_string payload a.a_config_fp;
  put_uvarint payload (List.length a.a_rows);
  List.iter (put_row payload) a.a_rows;
  let payload = Buffer.contents payload in
  let out = Buffer.create (header_len + String.length payload) in
  Buffer.add_string out magic;
  put_u32 out artifact_version;
  put_u32 out (String.length payload);
  Buffer.add_string out (Digest.string payload);
  Buffer.add_string out payload;
  Buffer.contents out

let read_artifact (bytes : string) : artifact =
  if String.length bytes < header_len then corrupt "shorter than the header";
  if String.sub bytes 0 4 <> magic then corrupt "bad magic";
  let u32 off =
    Char.code bytes.[off]
    lor (Char.code bytes.[off + 1] lsl 8)
    lor (Char.code bytes.[off + 2] lsl 16)
    lor (Char.code bytes.[off + 3] lsl 24)
  in
  let version = u32 4 in
  if version <> artifact_version then
    corrupt "format version %d (this reader understands %d)" version
      artifact_version;
  let len = u32 8 in
  if String.length bytes <> header_len + len then
    corrupt "payload length %d does not match file size %d" len
      (String.length bytes - header_len);
  let digest = String.sub bytes 12 16 in
  let payload = String.sub bytes header_len len in
  if Digest.string payload <> digest then corrupt "checksum mismatch";
  let r = { buf = payload; pos = 0; limit = len } in
  let a_source_digest = get_string r in
  let a_config_fp = get_string r in
  let a_rows = List.init (get_count r) (fun _ -> get_row r) in
  if r.pos <> r.limit then
    corrupt "%d trailing payload bytes" (r.limit - r.pos);
  { a_source_digest; a_config_fp; a_rows }

let tmp_seq = Atomic.make 0

let save_artifact ~path (a : artifact) =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  let oc = open_out_bin tmp in
  output_string oc (write_artifact a);
  close_out oc;
  Sys.rename tmp path

let load_artifact path : artifact =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> read_artifact (really_input_string ic (in_channel_length ic)))
