(** Pre-decoded threaded execution engine behind {!Sim.run}.

    [decode] compiles a linked program once into a flat struct-of-arrays
    form (int opcodes with the binop/relop/tag variant folded in, operands
    pre-resolved, per-pc procedure-meta indices); [execute] interprets it
    with a jump-table dispatch loop and an allocation-free contract
    checker.  Behaviourally identical to {!Sim.run_reference}, which the
    differential test suite enforces. *)

exception Runtime_error of string

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

val tag_index : Chow_codegen.Asm.tag -> int
(** Dense numbering of the traffic tags: data, scalar, save, callsave,
    stackarg. *)

type outcome = {
  output : int list;
  cycles : int;
  calls : int;
  data_loads : int;
  data_stores : int;
  scalar_loads : int;  (** scalar + save/restore + stack-arg loads *)
  scalar_stores : int;
  save_loads : int;
      (** the save/restore component alone: contract (entry/exit) plus
          around-call restores *)
  save_stores : int;
  call_save_loads : int;  (** the around-call subset of [save_loads] *)
  call_save_stores : int;
  block_counts : ((string * Chow_ir.Ir.label) * int) list;
      (** execution count of each basic block, when run with
          [profile = true]; empty otherwise *)
  proc_cycles : (string * int) list;
      (** cycles attributed to each procedure (in address order, with a
          ["<stub>"] entry for startup code when it executed), when run
          with [profile = true]; empty otherwise *)
}

type t
(** A program decoded for execution.  Decoding is total on linked
    programs; pre-link instructions ([Jal], [Lproc]) decode to a poison
    opcode that traps only if executed, matching the reference engine. *)

(** Call-path probes for {!execute}: [h_call] fires once per call
    transfer (with the call instruction's pc as [site] and the callee
    entry as [target]), [h_return] once per return, each carrying the
    executed-cycle count and the running contract / around-call
    save-restore totals at that moment.  The hooks never fire on the
    straight-line path, so execution without them is unchanged. *)
type hooks = {
  h_call :
    site:int ->
    target:int ->
    cycles:int ->
    contract_saves:int ->
    contract_restores:int ->
    call_saves:int ->
    call_restores:int ->
    unit;
  h_return :
    cycles:int ->
    contract_saves:int ->
    contract_restores:int ->
    call_saves:int ->
    call_restores:int ->
    unit;
}

val decode : Chow_codegen.Asm.program -> t

val execute :
  ?fuel:int ->
  ?mem_words:int ->
  ?check:bool ->
  ?profile:bool ->
  ?hooks:hooks ->
  ?pc_buf:int array ->
  t ->
  outcome
(** Interpret a decoded program; parameters and semantics exactly as
    {!Sim.run}.  [hooks] installs the call-path probes above.  [pc_buf]
    supplies a buffer (at least as long as the code) that receives the
    per-pc execution counts — it is zeroed on entry and filled whether or
    not [profile] is set, letting a profiler read the counts without the
    outcome carrying them. *)

val proc_name_of : Chow_codegen.Asm.program -> int -> string
(** The procedure containing the given pc (nearest entry at or below it),
    ["<stub>"] for the startup stub, ["<unknown>"] when the program
    publishes no procedure addresses.  Error-path helper shared by both
    engines so trap messages agree. *)

val attribute_cycles :
  Chow_codegen.Asm.program -> int array -> (string * int) list
(** Fold a per-pc execution profile into per-procedure cycle totals in
    address order, a ["<stub>"] entry prepended when startup code ran.
    Shared by both engines so their attributions agree exactly. *)

val publish_metrics : outcome -> unit
(** Publish a completed run's counters into {!Chow_obs.Metrics} (a no-op
    while metrics are disabled).  Both engines call this with the same
    counter names. *)
