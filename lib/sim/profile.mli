(** Dynamic penalty profiler: runtime attribution of the paper's headline
    metric.

    Chow's evaluation (Tables 2-4) is stated in dynamic terms — memory
    references executed for register saves and restores at procedure
    calls.  {!run} executes a linked program on the decoded engine with
    the call-path probes armed and answers *where* that penalty is paid:

    - every executed memory operation is classified by its static
      {!Chow_codegen.Asm.tag} — contract entry-save / exit-restore
      ([Tsave]), around-call save / restore ([Tcallsave]), scalar spill
      ([Tscalar]), stack argument ([Tstackarg]), or user data ([Tdata]) —
      and charged to the executing procedure and to the call site (caller
      pc) that forced it;
    - a dynamic call tree (gprof-style call-path profile) accumulates
      call counts, flat and cumulative cycles, and flat and cumulative
      penalty memory operations per path;
    - optionally, every call/return pair below a depth bound is emitted
      into the Chrome trace writer as a simulated-time span (1 cycle =
      1 us in the viewer), so a run is viewable next to its compile.

    The profiler is opt-in and pays its costs only on the call/return
    path: ordinary {!Sim.run} installs no hooks and its hot loop is
    untouched. *)

type counters = {
  entry_saves : int;  (** contract saves executed at procedure entries *)
  exit_restores : int;  (** contract restores executed at exits *)
  call_saves : int;  (** around-call saves executed at call sites *)
  call_restores : int;  (** around-call restores executed at call sites *)
  spill_loads : int;  (** scalar spill-home loads ([Tscalar]) *)
  spill_stores : int;
  stackarg_loads : int;  (** stack-argument traffic ([Tstackarg]) *)
  stackarg_stores : int;
  data_loads : int;  (** user data ([Tdata]): not a penalty *)
  data_stores : int;
}

(** One call site's share of the penalty.  Around-call operations are
    attributed statically (the save/restore instructions bracket their
    call), contract operations dynamically: each activation's entry
    saves and exit restores are charged to the call site that created
    it. *)
type site = {
  s_site : int;  (** pc of the call instruction; the stub's call is 0 *)
  s_caller : string;
  s_callee : string;  (** ["<indirect>"] for [jalr] sites *)
  s_calls : int;  (** times this site's call executed *)
  s_entry_saves : int;
  s_exit_restores : int;
  s_call_saves : int;
  s_call_restores : int;
}

(** A call-tree node: one distinct call path.  Flat figures count what
    executed while the node's activation was on top of the stack;
    cumulative figures include all descendants.  Penalty = the four
    save/restore classes (contract + around-call, loads + stores). *)
type node = {
  n_id : int;
  n_parent : int;  (** [-1] for the root *)
  n_depth : int;
  n_proc : string;  (** ["<program>"] for the root *)
  n_site : int;  (** call-site pc that created this path; [-1] for root *)
  n_calls : int;
  n_flat_cycles : int;
  n_cum_cycles : int;
  n_flat_penalty : int;
  n_cum_penalty : int;
}

type report = {
  outcome : Decode.outcome;  (** the run itself, with [profile] data *)
  counters : counters;
  sites : site list;
      (** descending by save/restore operation count, then by site pc *)
  calltree : node list;  (** preorder; the root is first *)
  tree_capped : int;
      (** calls on new distinct paths that found the node table full and
          collapsed into their parent; [0] means the tree is complete *)
}

(** [run prog] compiles [prog] through {!Decode} and executes it with the
    profiling probes installed.  [fuel], [mem_words] and [check] are as in
    {!Sim.run}.  With [trace] (default: whether tracing is enabled),
    call/return spans at depth <= [trace_depth] are pushed into
    {!Chow_obs.Trace} on the simulated timebase, at most [trace_limit] of
    them.  Publishes [sim.penalty.*] counters into {!Chow_obs.Metrics}
    when armed (including [sim.penalty.tree_capped], the report's
    [tree_capped] figure).  [max_nodes] bounds the call tree (default
    2^20 distinct paths); beyond it new paths collapse into their
    parent and are counted in [tree_capped] rather than dropped
    silently.  Raises {!Sim.Runtime_error} exactly as {!Sim.run}
    would — a trapped program yields no report. *)
val run :
  ?fuel:int ->
  ?mem_words:int ->
  ?check:bool ->
  ?trace:bool ->
  ?trace_depth:int ->
  ?trace_limit:int ->
  ?max_nodes:int ->
  Chow_codegen.Asm.program ->
  report

(** Total save/restore memory operations of a counter set — the paper's
    penalty figure. *)
val penalty_total : counters -> int

(** The classification and per-site table, as printed by
    [pawnc profile --penalty-report].  [limit] bounds the per-site rows
    (default 20); when rows are cut, a trailer line says how many were
    omitted so truncated output is never mistaken for complete output. *)
val pp_penalty_report : ?limit:int -> Format.formatter -> report -> unit

(** The call tree, preorder with indentation, as printed by
    [pawnc profile --calltree].  [max_depth] prunes deep paths
    (default: unbounded).  A nonzero [tree_capped] is reported in a
    trailer line. *)
val pp_calltree : ?max_depth:int -> Format.formatter -> report -> unit

(** {2 Profile artifacts}

    The serialized form of a penalty profile — what [pawnc profile
    --emit] writes and [pawnc build --pgo] consumes.  The container
    mirrors {!Chow_codegen.Objfile}: magic ["PWNP"], a version word, the
    payload length, the payload's MD5 digest, then an LEB128 payload.
    Corruption of any kind (truncation, bit flips, version skew,
    trailing bytes) raises {!Corrupt} on read — a damaged profile is
    rejected, never mis-applied. *)

exception Corrupt of string

(** One closed-form call site's measured penalty: the [r_ordinal]-th
    direct call from [r_caller] to [r_callee] (in block-label then
    instruction order — the emitter's pc order, so the ordinal resolves
    the same site in the caller's IR via {!Chow_ir.Inline.find_site}).
    [r_penalty] is the site's dynamic save/restore memory operations
    (contract + around-call); [r_cycles] the cycles spent below the site
    summed over all call paths through it. *)
type site_row = {
  r_caller : string;
  r_callee : string;
  r_ordinal : int;
  r_calls : int;
  r_penalty : int;
  r_cycles : int;
}

type artifact = {
  a_source_digest : string;
      (** MD5 of the source units the profiled program was built from *)
  a_config_fp : string;  (** {!Chow_compiler.Config.fingerprint} *)
  a_rows : site_row list;
      (** descending [r_penalty], then [r_cycles], then site identity *)
}

(** [artifact ~source_digest ~config_fp prog report] distills a penalty
    report of [prog] into its serializable rows: every direct ([jal])
    call site attributable to a (caller, callee, ordinal) identity.
    Stub and indirect sites carry no such identity and are dropped. *)
val artifact :
  source_digest:string ->
  config_fp:string ->
  Chow_codegen.Asm.program ->
  report ->
  artifact

(** [write_artifact a] / [read_artifact bytes]: the serialized container.
    [read_artifact] raises {!Corrupt} on any damage. *)
val write_artifact : artifact -> string

val read_artifact : string -> artifact

(** [save_artifact ~path a] writes atomically (unique temp + rename). *)
val save_artifact : path:string -> artifact -> unit

(** [load_artifact path] reads back; raises {!Corrupt} on damage and
    [Sys_error] on I/O failure. *)
val load_artifact : string -> artifact
