(** Instruction-level simulator: the stand-in for the paper's MIPS R2000
    and its [pixie] tracing facility (§8).  Executes a linked program over
    a flat word-addressed memory; counts cycles (one per instruction),
    calls, and loads/stores by the {!Chow_codegen.Asm.tag} assigned at code
    generation. *)

exception Runtime_error of string

type outcome = Decode.outcome = {
  output : int list;  (** the values printed, in order *)
  cycles : int;
  calls : int;
  data_loads : int;  (** globals and arrays: not removable by allocation *)
  data_stores : int;
  scalar_loads : int;
      (** the paper's metric: scalar variables + save/restore + stack
          arguments — removable by a perfect allocator *)
  scalar_stores : int;
  save_loads : int;
      (** the save/restore component alone: contract (entry/exit) plus
          around-call restores *)
  save_stores : int;
  call_save_loads : int;  (** the around-call subset of [save_loads] *)
  call_save_stores : int;
  block_counts : ((string * Chow_ir.Ir.label) * int) list;
      (** per-block execution counts when run with [profile = true];
          empty otherwise *)
  proc_cycles : (string * int) list;
      (** cycles attributed to each procedure (address order, ["<stub>"]
          first when startup code ran), when run with [profile = true];
          empty otherwise.  Both engines attribute identically. *)
}

(** [run prog] executes until [halt].

    - [check] (default true) arms the contract checker: at every return it
      verifies that the registers the callee's convention (or published
      usage mask) promises to preserve are unchanged, that the stack
      pointer is balanced, and that control returns to the call site; it
      also rejects calls that do not land on a procedure entry.
    - [profile] (default false) collects per-block execution counts.
    - [fuel] bounds executed instructions; [mem_words] sizes memory.

    Raises {!Runtime_error} on traps, contract violations, or exhausted
    fuel.

    This is the pre-decoded threaded engine ({!Decode}): the program is
    specialized once into flat int-coded arrays and interpreted by a
    jump-table dispatch loop with an allocation-free contract checker.
    The decode pass runs on every call and is amortized over the
    execution. *)
val run :
  ?fuel:int ->
  ?mem_words:int ->
  ?check:bool ->
  ?profile:bool ->
  Chow_codegen.Asm.program ->
  outcome

(** The original direct interpreter over {!Chow_codegen.Asm.inst}
    variants, retained as the executable specification.  Same parameters,
    semantics, counters and error messages as {!run}; the differential
    test suite holds the two engines to identical outcomes on every
    workload and on random programs. *)
val run_reference :
  ?fuel:int ->
  ?mem_words:int ->
  ?check:bool ->
  ?profile:bool ->
  Chow_codegen.Asm.program ->
  outcome
