(** Pre-decoded threaded execution engine: the fast path behind {!Sim.run}.

    [decode] compiles a linked {!Asm.program} once into a flat
    struct-of-arrays form — an int opcode per pc with the {!Ir.binop} /
    {!Ir.relop} / {!Asm.tag} variant folded into the opcode number and all
    operands pre-resolved into three int operand arrays — plus a per-pc
    procedure-meta index replacing the metas hashtable.  [execute] then
    interprets that form in a tight loop whose dispatch is a single dense
    integer match (a jump table), with no per-cycle variant walking and no
    hashing on the call path.

    The dynamic contract checker is allocation-free: the shadow stack is a
    set of parallel int arrays (return pc, sp at entry, meta index, snapshot
    base) and the per-call register snapshots live in one flat int buffer
    indexed by frame; both grow geometrically and are reused across the
    run.  The decoded engine is behaviourally identical to
    {!Sim.run_reference} — same outcomes, counters, block profiles and
    [Runtime_error] messages — which the differential test suite enforces
    on every workload and on random programs.

    Decode is total on linked programs: the only {!Asm.inst} constructors
    it cannot specialize ([Jal], [Lproc]) are pre-link artifacts, decoded
    to a poison opcode that traps exactly like the reference engine does,
    and only if actually executed. *)

module Machine = Chow_machine.Machine
module Asm = Chow_codegen.Asm
module Ir = Chow_ir.Ir
module Trace = Chow_obs.Trace
module Metrics = Chow_obs.Metrics

exception Runtime_error of string

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

let tag_index = function
  | Asm.Tdata -> 0
  | Asm.Tscalar -> 1
  | Asm.Tsave -> 2
  | Asm.Tcallsave -> 3
  | Asm.Tstackarg -> 4

type outcome = {
  output : int list;
  cycles : int;
  calls : int;
  data_loads : int;
  data_stores : int;
  scalar_loads : int;  (** scalar + save/restore + stack-arg loads *)
  scalar_stores : int;
  save_loads : int;  (** the save/restore component alone, both kinds *)
  save_stores : int;
  call_save_loads : int;  (** the around-call subset of [save_loads] *)
  call_save_stores : int;
  block_counts : ((string * Ir.label) * int) list;
      (** execution count of each basic block, when run with
          [profile = true]; empty otherwise *)
  proc_cycles : (string * int) list;
      (** cycles attributed to each procedure (in address order, with a
          ["<stub>"] entry for startup code when it executed), when run
          with [profile = true]; empty otherwise *)
}

(* Opcode numbering: dense from 0 so the dispatch match compiles to a jump
   table.  Variant sub-codes (binop, relop, tag) are folded in as offsets:
   [k_add + binop], [k_beq + relop], [k_lw + tag]. *)
let k_halt = 0
let k_li = 1 (* a=dst  b=imm *)
let k_move = 2 (* a=dst  b=src *)
let k_neg = 3
let k_not = 4
let k_add = 5 (* +0..9 = add sub mul div rem and or xor shl shr; a,b,c regs *)
let k_addi = 15 (* same, c = immediate *)
let k_cmp = 25 (* +0..5 = eq ne lt le gt ge; a=dst b,c regs *)
let k_cmpi = 31 (* same, c = immediate *)
let k_lw = 37 (* +tag; a=dst b=base c=offset *)
let k_sw = 42 (* +tag; a=src b=base c=offset *)
let k_b = 47 (* +relop; a,b regs, c=target *)
let k_j = 53 (* a=target *)
let k_jal = 54 (* a=target *)
let k_jalr = 55 (* a=reg *)
let k_jr = 56
let k_print = 57 (* a=reg *)
let k_unlinked = 58

let binop_code = function
  | Ir.Add -> 0
  | Ir.Sub -> 1
  | Ir.Mul -> 2
  | Ir.Div -> 3
  | Ir.Rem -> 4
  | Ir.And -> 5
  | Ir.Or -> 6
  | Ir.Xor -> 7
  | Ir.Shl -> 8
  | Ir.Shr -> 9

let relop_code = function
  | Ir.Eq -> 0
  | Ir.Ne -> 1
  | Ir.Lt -> 2
  | Ir.Le -> 3
  | Ir.Gt -> 4
  | Ir.Ge -> 5

type t = {
  ops : int array;
  fa : int array;
  fb : int array;
  fc : int array;
  prog : Asm.program;  (** retained for data layout and block pcs *)
  entries : int array;  (** procedure entries sorted by address *)
  names : string array;
  meta_of_pc : int array;  (** pc -> index into the meta arrays, or -1 *)
  meta_name : string array;  (** last slot is the "<unknown>" sentinel *)
  meta_preserved : int array array;
  unknown_meta : int;
  has_metas : bool;
}

(** Call-path probes, fired only on the call/return path (never per
    instruction): the executing cycle count and the running save/restore
    totals at the moment of the transfer, so a profiler can segment them
    by activation.  [h_call]'s [site] is the pc of the call instruction;
    both counters snapshots are taken after the transfer instruction
    itself has been counted. *)
type hooks = {
  h_call :
    site:int ->
    target:int ->
    cycles:int ->
    contract_saves:int ->
    contract_restores:int ->
    call_saves:int ->
    call_restores:int ->
    unit;
  h_return :
    cycles:int ->
    contract_saves:int ->
    contract_restores:int ->
    call_saves:int ->
    call_restores:int ->
    unit;
}

(* Writes to the hardwired zero register are discarded by redirecting them
   to a dump slot one past the real register file; reads then never need a
   zero check because regs.(0) is never written. *)
let dst r = if r = Machine.zero then Machine.nregs else r

let decode (prog : Asm.program) : t =
  let code = prog.Asm.code in
  let n = Array.length code in
  let ops = Array.make n 0 in
  let fa = Array.make n 0 in
  let fb = Array.make n 0 in
  let fc = Array.make n 0 in
  for i = 0 to n - 1 do
    let op, a, b, c =
      match code.(i) with
      | Asm.Halt -> (k_halt, 0, 0, 0)
      | Asm.Li (r, imm) -> (k_li, dst r, imm, 0)
      | Asm.Lproc _ | Asm.Jal _ -> (k_unlinked, 0, 0, 0)
      | Asm.Move (d, s) -> (k_move, dst d, s, 0)
      | Asm.Neg (d, s) -> (k_neg, dst d, s, 0)
      | Asm.Not (d, s) -> (k_not, dst d, s, 0)
      | Asm.Binop (op, d, a, b) -> (k_add + binop_code op, dst d, a, b)
      | Asm.Binopi (op, d, a, imm) -> (k_addi + binop_code op, dst d, a, imm)
      | Asm.Cmp (op, d, a, b) -> (k_cmp + relop_code op, dst d, a, b)
      | Asm.Cmpi (op, d, a, imm) -> (k_cmpi + relop_code op, dst d, a, imm)
      | Asm.Lw (d, b, off, tag) -> (k_lw + tag_index tag, dst d, b, off)
      | Asm.Sw (s, b, off, tag) -> (k_sw + tag_index tag, s, b, off)
      | Asm.B (op, a, b, l) -> (k_b + relop_code op, a, b, l)
      | Asm.J l -> (k_j, l, 0, 0)
      | Asm.Jal_pc t -> (k_jal, t, 0, 0)
      | Asm.Jalr r -> (k_jalr, r, 0, 0)
      | Asm.Jr -> (k_jr, 0, 0, 0)
      | Asm.Print r -> (k_print, r, 0, 0)
    in
    ops.(i) <- op;
    fa.(i) <- a;
    fb.(i) <- b;
    fc.(i) <- c
  done;
  let entries, names = Asm.proc_table prog in
  let meta_of_pc, metas = Asm.meta_table prog in
  let nmetas = Array.length metas in
  let meta_name = Array.make (nmetas + 1) "<unknown>" in
  let meta_preserved = Array.make (nmetas + 1) [||] in
  Array.iteri
    (fun i (m : Asm.meta) ->
      meta_name.(i) <- m.Asm.m_name;
      meta_preserved.(i) <- Array.of_list m.Asm.m_preserved)
    metas;
  {
    ops;
    fa;
    fb;
    fc;
    prog;
    entries;
    names;
    meta_of_pc;
    meta_name;
    meta_preserved;
    unknown_meta = nmetas;
    has_metas = nmetas > 0;
  }

(** Which procedure the given pc belongs to: the nearest entry at or below
    it.  Used only on error paths, to give traps a source context. *)
let attribute_pc (entries : int array) (names : string array) pc =
  let n = Array.length entries in
  if n = 0 then "<unknown>"
  else if pc < entries.(0) then "<stub>"
  else begin
    (* binary search for the greatest entry <= pc *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if entries.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    names.(!lo)
  end

let proc_name_of (prog : Asm.program) pc =
  let entries, names = Asm.proc_table prog in
  attribute_pc entries names pc

(** [attribute_cycles prog pc_counts] folds a per-pc execution profile into
    per-procedure cycle totals, in address order.  Cycles spent before the
    first procedure entry (the startup stub) are reported under
    ["<stub>"] when nonzero. *)
let attribute_cycles (prog : Asm.program) (pc_counts : int array) :
    (string * int) list =
  let entries, names = Asm.proc_table prog in
  let n = Array.length entries in
  if n = 0 then []
  else begin
    let ncode = Array.length pc_counts in
    let sum lo hi =
      let acc = ref 0 in
      for pc = lo to min hi (ncode - 1) do
        acc := !acc + pc_counts.(pc)
      done;
      !acc
    in
    let procs =
      List.init n (fun i ->
          let hi = if i + 1 < n then entries.(i + 1) - 1 else ncode - 1 in
          (names.(i), sum entries.(i) hi))
    in
    let stub = sum 0 (entries.(0) - 1) in
    if stub > 0 then ("<stub>", stub) :: procs else procs
  end

(* counter handles shared by both engines: same names, same totals *)
let m_runs = Metrics.counter "sim.runs"
let m_cycles = Metrics.counter "sim.cycles"
let m_calls = Metrics.counter "sim.calls"
let m_data_loads = Metrics.counter "sim.data_loads"
let m_data_stores = Metrics.counter "sim.data_stores"
let m_scalar_loads = Metrics.counter "sim.scalar_loads"
let m_scalar_stores = Metrics.counter "sim.scalar_stores"
let m_save_loads = Metrics.counter "sim.save_loads"
let m_save_stores = Metrics.counter "sim.save_stores"
let m_call_save_loads = Metrics.counter "sim.call_save_loads"
let m_call_save_stores = Metrics.counter "sim.call_save_stores"

(** Publish an outcome's counters into the metrics registry (used by both
    engines after a completed run, so the totals match whichever engine
    executed). *)
let publish_metrics (o : outcome) =
  if Metrics.is_on () then begin
    Metrics.incr m_runs;
    Metrics.add m_cycles o.cycles;
    Metrics.add m_calls o.calls;
    Metrics.add m_data_loads o.data_loads;
    Metrics.add m_data_stores o.data_stores;
    Metrics.add m_scalar_loads o.scalar_loads;
    Metrics.add m_scalar_stores o.scalar_stores;
    Metrics.add m_save_loads o.save_loads;
    Metrics.add m_save_stores o.save_stores;
    Metrics.add m_call_save_loads o.call_save_loads;
    Metrics.add m_call_save_stores o.call_save_stores;
    List.iter
      (fun (name, c) ->
        Metrics.add (Metrics.counter ("sim.proc_cycles/" ^ name)) c)
      o.proc_cycles
  end

let execute ?(fuel = 500_000_000) ?(mem_words = 1 lsl 20) ?(check = true)
    ?(profile = false) ?hooks ?pc_buf (t : t) : outcome =
  let prog = t.prog in
  let ops = t.ops and fa = t.fa and fb = t.fb and fc = t.fc in
  let ncode = Array.length ops in
  (* a caller-supplied buffer makes per-pc counts observable without
     adding fields to the outcome; [profile] alone uses a private one *)
  let count_pcs = profile || pc_buf <> None in
  let pc_counts =
    match pc_buf with
    | Some a ->
        if Array.length a < ncode then
          invalid_arg "Decode.execute: pc_buf shorter than the code";
        Array.fill a 0 (Array.length a) 0;
        a
    | None -> if profile then Array.make ncode 0 else [||]
  in
  let mem = Array.make mem_words 0 in
  List.iter (fun (addr, v) -> mem.(addr) <- v) prog.Asm.data_init;
  (* one extra slot past the register file: the dump target for writes to
     the zero register (see [dst]) *)
  let regs = Array.make (Machine.nregs + 1) 0 in
  regs.(Machine.sp) <- mem_words;
  let cycles = ref 0 and calls = ref 0 in
  let loads = Array.make 5 0 and stores = Array.make 5 0 in
  let output = ref [] in
  (* contract-checker shadow stack: parallel int arrays, no allocation per
     call — frames and register snapshots are written into preallocated
     buffers that grow geometrically and are reused for the whole run *)
  let frame_cap = ref 64 in
  let fr_ret = ref (Array.make !frame_cap 0) in
  let fr_sp = ref (Array.make !frame_cap 0) in
  let fr_meta = ref (Array.make !frame_cap 0) in
  let fr_base = ref (Array.make !frame_cap 0) in
  let depth = ref 0 in
  let snap_cap = ref 256 in
  let snap = ref (Array.make !snap_cap 0) in
  let snap_top = ref 0 in
  let grow_frames () =
    let c = !frame_cap * 2 in
    let g a =
      let n = Array.make c 0 in
      Array.blit !a 0 n 0 !frame_cap;
      a := n
    in
    g fr_ret;
    g fr_sp;
    g fr_meta;
    g fr_base;
    frame_cap := c
  in
  let grow_snap need =
    let c = ref (!snap_cap * 2) in
    while !c < need do
      c := !c * 2
    done;
    let n = Array.make !c 0 in
    Array.blit !snap 0 n 0 !snap_top;
    snap := n;
    snap_cap := !c
  in
  let overflow_limit = prog.Asm.data_size + 64 in
  let pc = ref prog.Asm.entry in
  let oob addr =
    error "memory access out of bounds: %d (pc %d, in %s)" addr !pc
      (attribute_pc t.entries t.names !pc)
  in
  (* tracing is sampled on the call path only (every 256th call), and the
     enabled check is hoisted out of the loop: the hot path is untouched
     when tracing is off *)
  let tr = Trace.is_on () in
  let do_call target return_pc =
    incr calls;
    if tr && !calls land 255 = 0 then
      Trace.counter "sim.traffic"
        [
          ("cycles", !cycles);
          ("calls", !calls);
          ("scalar_loads", loads.(1) + loads.(2) + loads.(3) + loads.(4));
          ("scalar_stores", stores.(1) + stores.(2) + stores.(3) + stores.(4));
        ];
    if regs.(Machine.sp) <= overflow_limit then
      error "stack overflow (pc %d, in %s)" !pc
        (attribute_pc t.entries t.names !pc);
    if target < 0 || target >= ncode then
      error "call to invalid address %d (pc %d, in %s)" target !pc
        (attribute_pc t.entries t.names !pc);
    regs.(Machine.ra) <- return_pc;
    (match hooks with
    | Some h ->
        h.h_call ~site:(return_pc - 1) ~target ~cycles:!cycles
          ~contract_saves:stores.(2) ~contract_restores:loads.(2)
          ~call_saves:stores.(3) ~call_restores:loads.(3)
    | None -> ());
    if check then begin
      let m =
        let m = t.meta_of_pc.(target) in
        if m >= 0 then m
        else if t.has_metas then
          error "call to %d, which is not a procedure entry (pc %d, in %s)"
            target !pc
            (attribute_pc t.entries t.names !pc)
        else t.unknown_meta
      in
      if !depth = !frame_cap then grow_frames ();
      let d = !depth in
      !fr_ret.(d) <- return_pc;
      !fr_sp.(d) <- regs.(Machine.sp);
      !fr_meta.(d) <- m;
      !fr_base.(d) <- !snap_top;
      depth := d + 1;
      let pres = t.meta_preserved.(m) in
      let n = Array.length pres in
      if !snap_top + n > !snap_cap then grow_snap (!snap_top + n);
      let sn = !snap and top = !snap_top in
      for k = 0 to n - 1 do
        sn.(top + k) <- regs.(pres.(k))
      done;
      snap_top := top + n
    end;
    target
  in
  let do_return () =
    let target = regs.(Machine.ra) in
    (match hooks with
    | Some h ->
        h.h_return ~cycles:!cycles ~contract_saves:stores.(2)
          ~contract_restores:loads.(2) ~call_saves:stores.(3)
          ~call_restores:loads.(3)
    | None -> ());
    if check then begin
      if !depth = 0 then
        error "return with empty call stack (pc %d, in %s)" !pc
          (attribute_pc t.entries t.names !pc);
      let d = !depth - 1 in
      depth := d;
      let m = !fr_meta.(d) in
      let callee = t.meta_name.(m) in
      if target <> !fr_ret.(d) then
        error "%s: returned to %d, expected %d" callee target !fr_ret.(d);
      if regs.(Machine.sp) <> !fr_sp.(d) then
        error "%s: stack pointer not restored (%d <> %d)" callee
          regs.(Machine.sp) !fr_sp.(d);
      let pres = t.meta_preserved.(m) in
      let base = !fr_base.(d) in
      let sn = !snap in
      for k = 0 to Array.length pres - 1 do
        let r = pres.(k) in
        if regs.(r) <> sn.(base + k) then
          error "%s: clobbered preserved register %s (%d <> %d)" callee
            (Machine.name r) regs.(r)
            sn.(base + k)
      done;
      snap_top := base
    end;
    target
  in
  let running = ref true in
  while !running do
    if !cycles >= fuel then
      error "out of fuel after %d cycles (pc %d, in %s)" fuel !pc
        (attribute_pc t.entries t.names !pc);
    let i = !pc in
    if i < 0 || i >= ncode then error "pc out of range: %d" i;
    if count_pcs then pc_counts.(i) <- pc_counts.(i) + 1;
    incr cycles;
    let next = i + 1 in
    let a = Array.unsafe_get fa i
    and b = Array.unsafe_get fb i
    and c = Array.unsafe_get fc i in
    match Array.unsafe_get ops i with
    | 0 (* halt *) -> running := false
    | 1 (* li *) ->
        regs.(a) <- b;
        pc := next
    | 2 (* move *) ->
        regs.(a) <- regs.(b);
        pc := next
    | 3 (* neg *) ->
        regs.(a) <- -regs.(b);
        pc := next
    | 4 (* not *) ->
        regs.(a) <- (if regs.(b) = 0 then 1 else 0);
        pc := next
    | 5 (* add *) ->
        regs.(a) <- regs.(b) + regs.(c);
        pc := next
    | 6 (* sub *) ->
        regs.(a) <- regs.(b) - regs.(c);
        pc := next
    | 7 (* mul *) ->
        regs.(a) <- regs.(b) * regs.(c);
        pc := next
    | 8 (* div *) ->
        let d = regs.(c) in
        if d = 0 then
          error "division by zero (pc %d, in %s)" i
            (attribute_pc t.entries t.names i);
        regs.(a) <- regs.(b) / d;
        pc := next
    | 9 (* rem *) ->
        let d = regs.(c) in
        if d = 0 then
          error "remainder by zero (pc %d, in %s)" i
            (attribute_pc t.entries t.names i);
        regs.(a) <- regs.(b) mod d;
        pc := next
    | 10 (* and *) ->
        regs.(a) <- regs.(b) land regs.(c);
        pc := next
    | 11 (* or *) ->
        regs.(a) <- regs.(b) lor regs.(c);
        pc := next
    | 12 (* xor *) ->
        regs.(a) <- regs.(b) lxor regs.(c);
        pc := next
    | 13 (* shl *) ->
        regs.(a) <- regs.(b) lsl regs.(c);
        pc := next
    | 14 (* shr *) ->
        regs.(a) <- regs.(b) asr regs.(c);
        pc := next
    | 15 (* addi *) ->
        regs.(a) <- regs.(b) + c;
        pc := next
    | 16 (* subi *) ->
        regs.(a) <- regs.(b) - c;
        pc := next
    | 17 (* muli *) ->
        regs.(a) <- regs.(b) * c;
        pc := next
    | 18 (* divi *) ->
        if c = 0 then
          error "division by zero (pc %d, in %s)" i
            (attribute_pc t.entries t.names i);
        regs.(a) <- regs.(b) / c;
        pc := next
    | 19 (* remi *) ->
        if c = 0 then
          error "remainder by zero (pc %d, in %s)" i
            (attribute_pc t.entries t.names i);
        regs.(a) <- regs.(b) mod c;
        pc := next
    | 20 (* andi *) ->
        regs.(a) <- regs.(b) land c;
        pc := next
    | 21 (* ori *) ->
        regs.(a) <- regs.(b) lor c;
        pc := next
    | 22 (* xori *) ->
        regs.(a) <- regs.(b) lxor c;
        pc := next
    | 23 (* shli *) ->
        regs.(a) <- regs.(b) lsl c;
        pc := next
    | 24 (* shri *) ->
        regs.(a) <- regs.(b) asr c;
        pc := next
    | 25 (* cmp eq *) ->
        regs.(a) <- (if regs.(b) = regs.(c) then 1 else 0);
        pc := next
    | 26 (* cmp ne *) ->
        regs.(a) <- (if regs.(b) <> regs.(c) then 1 else 0);
        pc := next
    | 27 (* cmp lt *) ->
        regs.(a) <- (if regs.(b) < regs.(c) then 1 else 0);
        pc := next
    | 28 (* cmp le *) ->
        regs.(a) <- (if regs.(b) <= regs.(c) then 1 else 0);
        pc := next
    | 29 (* cmp gt *) ->
        regs.(a) <- (if regs.(b) > regs.(c) then 1 else 0);
        pc := next
    | 30 (* cmp ge *) ->
        regs.(a) <- (if regs.(b) >= regs.(c) then 1 else 0);
        pc := next
    | 31 (* cmpi eq *) ->
        regs.(a) <- (if regs.(b) = c then 1 else 0);
        pc := next
    | 32 (* cmpi ne *) ->
        regs.(a) <- (if regs.(b) <> c then 1 else 0);
        pc := next
    | 33 (* cmpi lt *) ->
        regs.(a) <- (if regs.(b) < c then 1 else 0);
        pc := next
    | 34 (* cmpi le *) ->
        regs.(a) <- (if regs.(b) <= c then 1 else 0);
        pc := next
    | 35 (* cmpi gt *) ->
        regs.(a) <- (if regs.(b) > c then 1 else 0);
        pc := next
    | 36 (* cmpi ge *) ->
        regs.(a) <- (if regs.(b) >= c then 1 else 0);
        pc := next
    | 37 (* lw data *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        regs.(a) <- Array.unsafe_get mem addr;
        loads.(0) <- loads.(0) + 1;
        pc := next
    | 38 (* lw scalar *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        regs.(a) <- Array.unsafe_get mem addr;
        loads.(1) <- loads.(1) + 1;
        pc := next
    | 39 (* lw save *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        regs.(a) <- Array.unsafe_get mem addr;
        loads.(2) <- loads.(2) + 1;
        pc := next
    | 40 (* lw callsave *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        regs.(a) <- Array.unsafe_get mem addr;
        loads.(3) <- loads.(3) + 1;
        pc := next
    | 41 (* lw stackarg *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        regs.(a) <- Array.unsafe_get mem addr;
        loads.(4) <- loads.(4) + 1;
        pc := next
    | 42 (* sw data *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        Array.unsafe_set mem addr regs.(a);
        stores.(0) <- stores.(0) + 1;
        pc := next
    | 43 (* sw scalar *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        Array.unsafe_set mem addr regs.(a);
        stores.(1) <- stores.(1) + 1;
        pc := next
    | 44 (* sw save *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        Array.unsafe_set mem addr regs.(a);
        stores.(2) <- stores.(2) + 1;
        pc := next
    | 45 (* sw callsave *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        Array.unsafe_set mem addr regs.(a);
        stores.(3) <- stores.(3) + 1;
        pc := next
    | 46 (* sw stackarg *) ->
        let addr = regs.(b) + c in
        if addr < 0 || addr >= mem_words then oob addr;
        Array.unsafe_set mem addr regs.(a);
        stores.(4) <- stores.(4) + 1;
        pc := next
    | 47 (* b eq *) -> pc := (if regs.(a) = regs.(b) then c else next)
    | 48 (* b ne *) -> pc := (if regs.(a) <> regs.(b) then c else next)
    | 49 (* b lt *) -> pc := (if regs.(a) < regs.(b) then c else next)
    | 50 (* b le *) -> pc := (if regs.(a) <= regs.(b) then c else next)
    | 51 (* b gt *) -> pc := (if regs.(a) > regs.(b) then c else next)
    | 52 (* b ge *) -> pc := (if regs.(a) >= regs.(b) then c else next)
    | 53 (* j *) -> pc := a
    | 54 (* jal *) -> pc := do_call a next
    | 55 (* jalr *) -> pc := do_call regs.(a) next
    | 56 (* jr *) -> pc := do_return ()
    | 57 (* print *) ->
        output := regs.(a) :: !output;
        pc := next
    | 58 (* unlinked Jal/Lproc *) ->
        error "unlinked instruction at %d (in %s)" i
          (attribute_pc t.entries t.names i)
    | _ -> assert false
  done;
  let block_counts =
    if profile then
      List.map (fun (pc, key) -> (key, pc_counts.(pc))) prog.Asm.block_pcs
    else []
  in
  let proc_cycles =
    if profile then attribute_cycles prog pc_counts else []
  in
  let outcome =
    {
      output = List.rev !output;
      cycles = !cycles;
      calls = !calls;
      data_loads = loads.(0);
      data_stores = stores.(0);
      scalar_loads = loads.(1) + loads.(2) + loads.(3) + loads.(4);
      scalar_stores = stores.(1) + stores.(2) + stores.(3) + stores.(4);
      save_loads = loads.(2) + loads.(3);
      save_stores = stores.(2) + stores.(3);
      call_save_loads = loads.(3);
      call_save_stores = stores.(3);
      block_counts;
      proc_cycles;
    }
  in
  publish_metrics outcome;
  outcome
