(** Lowering from the Pawn AST to the IR.

    Every scalar local, parameter and expression temporary becomes a virtual
    register; globals are accessed through explicit loads and stores at each
    mention (their promotion to registers is the allocator's job, not the
    front-end's).  Short-circuit [&&]/[||] lower to control flow.  Declared
    locals without an initializer are zeroed so program behaviour is
    deterministic under every allocation strategy. *)

module Ir = Chow_ir.Ir
module Builder = Chow_ir.Builder
module Verify = Chow_ir.Verify

type scope = { mutable bindings : (string * Ir.vreg) list; parent : scope option }

let rec lookup_local scope name =
  match scope with
  | None -> None
  | Some s -> (
      match List.assoc_opt name s.bindings with
      | Some v -> Some v
      | None -> lookup_local s.parent name)

let binop_of_ast : Ast.binop -> Ir.binop = function
  | Ast.Add -> Ir.Add
  | Ast.Sub -> Ir.Sub
  | Ast.Mul -> Ir.Mul
  | Ast.Div -> Ir.Div
  | Ast.Rem -> Ir.Rem
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or ->
      invalid_arg "binop_of_ast"

let relop_of_ast : Ast.binop -> Ir.relop option = function
  | Ast.Eq -> Some Ir.Eq
  | Ast.Ne -> Some Ir.Ne
  | Ast.Lt -> Some Ir.Lt
  | Ast.Le -> Some Ir.Le
  | Ast.Gt -> Some Ir.Gt
  | Ast.Ge -> Some Ir.Ge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.And | Ast.Or -> None

type ctx = { env : Check.env; bld : Builder.t }

let rec lower_expr ctx scope (e : Ast.expr) : Ir.operand =
  match e with
  | Ast.Int n -> Ir.Imm n
  | Ast.Var x -> (
      match lookup_local (Some scope) x with
      | Some v -> Ir.Reg v
      | None ->
          let t = Builder.new_vreg ctx.bld in
          Builder.emit ctx.bld (Ir.Load (t, Ir.Global_word (x, 0)));
          Ir.Reg t)
  | Ast.Index (g, idx) ->
      let i = lower_expr ctx scope idx in
      let t = Builder.new_vreg ctx.bld in
      Builder.emit ctx.bld (Ir.Load (t, Ir.Global_index (g, i)));
      Ir.Reg t
  | Ast.Call (f, args) -> (
      match lower_call ctx scope f args ~want_value:true with
      | Some v -> Ir.Reg v
      | None -> assert false)
  | Ast.Addr_of f ->
      let t = Builder.new_vreg ctx.bld in
      Builder.emit ctx.bld (Ir.Addr_of_proc (t, f));
      Ir.Reg t
  | Ast.Neg e ->
      let o = lower_expr ctx scope e in
      let t = Builder.new_vreg ctx.bld in
      Builder.emit ctx.bld (Ir.Neg (t, o));
      Ir.Reg t
  | Ast.Not e ->
      let o = lower_expr ctx scope e in
      let t = Builder.new_vreg ctx.bld in
      Builder.emit ctx.bld (Ir.Not (t, o));
      Ir.Reg t
  | Ast.Binop ((Ast.And | Ast.Or), _, _) ->
      (* materialize the truth value through control flow *)
      let t = Builder.new_vreg ctx.bld in
      let ltrue = Builder.new_block ctx.bld in
      let lfalse = Builder.new_block ctx.bld in
      let lend = Builder.new_block ctx.bld in
      lower_cond ctx scope e ~ltrue ~lfalse;
      Builder.switch_to ctx.bld ltrue;
      Builder.emit ctx.bld (Ir.Li (t, 1));
      Builder.terminate ctx.bld (Ir.Jump lend);
      Builder.switch_to ctx.bld lfalse;
      Builder.emit ctx.bld (Ir.Li (t, 0));
      Builder.terminate ctx.bld (Ir.Jump lend);
      Builder.switch_to ctx.bld lend;
      Ir.Reg t
  | Ast.Binop (op, a, b) -> (
      let oa = lower_expr ctx scope a in
      let ob = lower_expr ctx scope b in
      let t = Builder.new_vreg ctx.bld in
      match relop_of_ast op with
      | Some rel ->
          Builder.emit ctx.bld (Ir.Cmp (rel, t, oa, ob));
          Ir.Reg t
      | None ->
          Builder.emit ctx.bld (Ir.Binop (binop_of_ast op, t, oa, ob));
          Ir.Reg t)

and lower_call ctx scope f args ~want_value =
  let argops = List.map (lower_expr ctx scope) args in
  let target =
    match lookup_local (Some scope) f with
    | Some v -> Ir.Indirect v
    | None -> (
        match Check.lookup ctx.env f with
        | Some (Check.Sproc _ | Check.Sextern _) -> Ir.Direct f
        | Some Check.Sscalar ->
            (* indirect through a global scalar holding a procedure address *)
            let t = Builder.new_vreg ctx.bld in
            Builder.emit ctx.bld (Ir.Load (t, Ir.Global_word (f, 0)));
            Ir.Indirect t
        | Some (Check.Sarray _) | None -> assert false (* ruled out by Check *))
  in
  let ret = if want_value then Some (Builder.new_vreg ctx.bld) else None in
  Builder.emit ctx.bld (Ir.Call { target; args = argops; ret });
  ret

(** [lower_cond ctx scope e ~ltrue ~lfalse] terminates the current block
    with control flow that reaches [ltrue] iff [e] evaluates non-zero. *)
and lower_cond ctx scope (e : Ast.expr) ~ltrue ~lfalse =
  match e with
  | Ast.Binop (Ast.And, a, b) ->
      let lmid = Builder.new_block ctx.bld in
      lower_cond ctx scope a ~ltrue:lmid ~lfalse;
      Builder.switch_to ctx.bld lmid;
      lower_cond ctx scope b ~ltrue ~lfalse
  | Ast.Binop (Ast.Or, a, b) ->
      let lmid = Builder.new_block ctx.bld in
      lower_cond ctx scope a ~ltrue ~lfalse:lmid;
      Builder.switch_to ctx.bld lmid;
      lower_cond ctx scope b ~ltrue ~lfalse
  | Ast.Not e -> lower_cond ctx scope e ~ltrue:lfalse ~lfalse:ltrue
  | Ast.Binop (op, a, b) when relop_of_ast op <> None ->
      let oa = lower_expr ctx scope a in
      let ob = lower_expr ctx scope b in
      let rel = Option.get (relop_of_ast op) in
      Builder.terminate ctx.bld (Ir.Cbranch (rel, oa, ob, ltrue, lfalse))
  | Ast.Int n ->
      Builder.terminate ctx.bld (Ir.Jump (if n <> 0 then ltrue else lfalse))
  | _ ->
      let o = lower_expr ctx scope e in
      Builder.terminate ctx.bld (Ir.Cbranch (Ir.Ne, o, Ir.Imm 0, ltrue, lfalse))

let assign_into ctx (dst : Ir.vreg) (src : Ir.operand) =
  match src with
  | Ir.Imm n -> Builder.emit ctx.bld (Ir.Li (dst, n))
  | Ir.Reg v -> if v <> dst then Builder.emit ctx.bld (Ir.Mov (dst, v))

let rec lower_stmts ctx scope (stmts : Ast.stmt list) =
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Slocal (x, init) ->
          let v = Builder.new_vreg ~kind:(Ir.Vlocal x) ctx.bld in
          (match init with
          | Some e -> assign_into ctx v (lower_expr ctx scope e)
          | None -> Builder.emit ctx.bld (Ir.Li (v, 0)));
          scope.bindings <- (x, v) :: scope.bindings
      | Ast.Sassign (x, e) -> (
          let o = lower_expr ctx scope e in
          match lookup_local (Some scope) x with
          | Some v -> assign_into ctx v o
          | None -> Builder.emit ctx.bld (Ir.Store (Ir.Global_word (x, 0), o)))
      | Ast.Sstore (g, idx, e) ->
          let i = lower_expr ctx scope idx in
          let o = lower_expr ctx scope e in
          Builder.emit ctx.bld (Ir.Store (Ir.Global_index (g, i), o))
      | Ast.Sif (c, then_body, else_body) ->
          let lthen = Builder.new_block ctx.bld in
          let lelse = Builder.new_block ctx.bld in
          let lend = Builder.new_block ctx.bld in
          lower_cond ctx scope c ~ltrue:lthen ~lfalse:lelse;
          Builder.switch_to ctx.bld lthen;
          lower_stmts ctx { bindings = []; parent = Some scope } then_body;
          Builder.terminate ctx.bld (Ir.Jump lend);
          Builder.switch_to ctx.bld lelse;
          lower_stmts ctx { bindings = []; parent = Some scope } else_body;
          Builder.terminate ctx.bld (Ir.Jump lend);
          Builder.switch_to ctx.bld lend
      | Ast.Swhile (c, body) ->
          let lhead = Builder.new_block ctx.bld in
          let lbody = Builder.new_block ctx.bld in
          let lexit = Builder.new_block ctx.bld in
          Builder.terminate ctx.bld (Ir.Jump lhead);
          Builder.switch_to ctx.bld lhead;
          lower_cond ctx scope c ~ltrue:lbody ~lfalse:lexit;
          Builder.switch_to ctx.bld lbody;
          lower_stmts ctx { bindings = []; parent = Some scope } body;
          Builder.terminate ctx.bld (Ir.Jump lhead);
          Builder.switch_to ctx.bld lexit
      | Ast.Sreturn e ->
          let o = Option.map (lower_expr ctx scope) e in
          Builder.terminate ctx.bld (Ir.Ret o)
      | Ast.Sprint e ->
          let o = lower_expr ctx scope e in
          Builder.emit ctx.bld (Ir.Print o)
      | Ast.Sexpr (Ast.Call (f, args)) ->
          ignore (lower_call ctx scope f args ~want_value:false)
      | Ast.Sexpr e ->
          (* pure expression in statement position: evaluate for any call it
             contains, discard the value *)
          ignore (lower_expr ctx scope e))
    stmts

let lower_proc env (p : Ast.proc_decl) : Ir.proc =
  let bld = Builder.create ~exported:(p.Ast.p_export || p.Ast.p_name = "main")
      p.Ast.p_name
  in
  let ctx = { env; bld } in
  let scope = { bindings = []; parent = None } in
  List.iter
    (fun name ->
      let v = Builder.add_param bld name in
      scope.bindings <- (name, v) :: scope.bindings)
    p.Ast.p_params;
  lower_stmts ctx scope p.Ast.p_body;
  (* fall off the end: implicit return handled by Builder.finish *)
  Builder.finish bld

(** [lower_program prog] checks and lowers a full compilation unit. *)
let lower_program ?(require_main = true) (prog : Ast.program) : Ir.prog =
  let env = Check.check ~require_main prog in
  let globals =
    List.filter_map
      (function
        | Ast.Dglobal (g, init) -> Some (g, Ir.Gscalar init)
        | Ast.Darray (g, size, init) -> Some (g, Ir.Garray (size, init))
        | Ast.Dproc _ | Ast.Dextern _ -> None)
      prog
  in
  let externs =
    List.filter_map
      (function
        | Ast.Dextern (f, _) -> Some f
        | Ast.Dglobal _ | Ast.Darray _ | Ast.Dproc _ -> None)
      prog
  in
  let procs =
    List.filter_map
      (function
        | Ast.Dproc p -> Some (lower_proc env p)
        | Ast.Dglobal _ | Ast.Darray _ | Ast.Dextern _ -> None)
      prog
  in
  let ir = { Ir.procs; globals; externs } in
  Verify.check_prog ir;
  ir

(** [compile_unit src] parses, checks and lowers Pawn source text. *)
let compile_unit ?(require_main = true) src =
  let ast = Parser.parse src in
  Chow_obs.Trace.span "lower" (fun () -> lower_program ~require_main ast)
