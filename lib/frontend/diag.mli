(** Unified front-end diagnostics.

    The three front-end phases historically reported failure through three
    unrelated exceptions ([Lexer.Error], [Parser.Error], [Check.Error]).
    This module gives them one value representation so result-returning
    entry points ([Pipeline.compile_result]) and callers that want to
    render an error uniformly need exactly one case.  The legacy
    exceptions remain the raising surface — {!catch} converts them to a
    {!error}, {!raise_legacy} converts back — so existing
    exception-matching code keeps compiling unchanged. *)

type phase = Lex | Parse | Check | Profile

type error = {
  phase : phase;
  message : string;
  line : int;  (** 1-based source line; [0] when the phase has no location *)
}

(** Carrier for phases without a historical exception of their own
    ([Profile]: corrupt or stale profile artifacts). *)
exception Error of error

val phase_name : phase -> string

(** [error ~phase ?line message] builds an error ([line] defaults to 0). *)
val error : phase:phase -> ?line:int -> string -> error

(** Render as ["<phase> error[ at line N]: <message>"]. *)
val to_string : error -> string

val pp : Format.formatter -> error -> unit

(** [of_exn e] is the diagnostic corresponding to a front-end exception,
    or [None] for any other exception. *)
val of_exn : exn -> error option

(** [catch f] runs [f ()], mapping the three legacy front-end exceptions
    to [Error _]; every other exception passes through. *)
val catch : (unit -> 'a) -> ('a, error) result

(** [raise_legacy e] re-raises [e] as the legacy exception of its phase:
    {!Lexer.Error}, {!Parser.Error}, {!Check.Error} — or {!Error} itself
    for phases without a legacy exception. *)
val raise_legacy : error -> 'a
