(** Unified front-end diagnostics; see the interface for the contract. *)

type phase = Lex | Parse | Check | Profile

type error = { phase : phase; message : string; line : int }

exception Error of error

let phase_name = function
  | Lex -> "lexical"
  | Parse -> "syntax"
  | Check -> "semantic"
  | Profile -> "profile"

let error ~phase ?(line = 0) message = { phase; message; line }

let to_string e =
  if e.line > 0 then
    Printf.sprintf "%s error at line %d: %s" (phase_name e.phase) e.line
      e.message
  else Printf.sprintf "%s error: %s" (phase_name e.phase) e.message

let pp ppf e = Format.pp_print_string ppf (to_string e)

let of_exn = function
  | Lexer.Error (message, line) -> Some { phase = Lex; message; line }
  | Parser.Error (message, line) -> Some { phase = Parse; message; line }
  | Check.Error message -> Some { phase = Check; message; line = 0 }
  | Error e -> Some e
  | _ -> None

let catch f =
  match f () with
  | v -> Ok v
  | exception e -> ( match of_exn e with Some d -> Error d | None -> raise e)

let raise_legacy e =
  match e.phase with
  | Lex -> raise (Lexer.Error (e.message, e.line))
  | Parse -> raise (Parser.Error (e.message, e.line))
  | Check -> raise (Check.Error e.message)
  | Profile -> raise (Error e)
