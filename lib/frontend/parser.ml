(** Recursive-descent parser for Pawn (Menhir is not available in this
    environment, and the grammar is small enough that a hand-written parser
    is clearer anyway).

    Expression grammar, loosest to tightest:
    or-expr > and-expr > comparison > additive > multiplicative > unary
    > primary. *)

exception Error of string * int

type state = { toks : (Token.t * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let error st fmt =
  Format.kasprintf (fun msg -> raise (Error (msg, line st))) fmt

let expect st tok =
  if peek st = tok then advance st
  else
    error st "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT s -> advance st; s
  | t -> error st "expected identifier but found %s" (Token.to_string t)

let expect_int st =
  match peek st with
  | Token.INT n -> advance st; n
  | Token.MINUS -> (
      advance st;
      match peek st with
      | Token.INT n -> advance st; -n
      | t -> error st "expected integer but found %s" (Token.to_string t))
  | t -> error st "expected integer but found %s" (Token.to_string t)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Token.OROR then begin
    advance st;
    Ast.Binop (Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = Token.ANDAND then begin
    advance st;
    Ast.Binop (Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Token.PLUS -> advance st; go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Token.MINUS -> advance st; go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.STAR -> advance st; go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH -> advance st; go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Token.PERCENT ->
        advance st;
        go (Ast.Binop (Ast.Rem, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS -> advance st; Ast.Neg (parse_unary st)
  | Token.BANG -> advance st; Ast.Not (parse_unary st)
  | Token.AMP ->
      advance st;
      Ast.Addr_of (expect_ident st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT n -> advance st; Ast.Int n
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance st;
      match peek st with
      | Token.LPAREN ->
          advance st;
          let args = parse_args st in
          expect st Token.RPAREN;
          Ast.Call (name, args)
      | Token.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st Token.RBRACKET;
          Ast.Index (name, idx)
      | _ -> Ast.Var name)
  | t -> error st "expected expression but found %s" (Token.to_string t)

and parse_args st =
  if peek st = Token.RPAREN then []
  else
    let rec go acc =
      let acc = parse_expr st :: acc in
      if peek st = Token.COMMA then begin advance st; go acc end
      else List.rev acc
    in
    go []

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Token.KW_VAR ->
      advance st;
      let name = expect_ident st in
      let init =
        if peek st = Token.ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Token.SEMI;
      Ast.Slocal (name, init)
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_body = parse_block st in
      let else_body =
        if peek st = Token.KW_ELSE then begin
          advance st;
          if peek st = Token.KW_IF then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      Ast.Sif (cond, then_body, else_body)
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      Ast.Swhile (cond, parse_block st)
  | Token.KW_RETURN ->
      advance st;
      if peek st = Token.SEMI then begin
        advance st;
        Ast.Sreturn None
      end
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        Ast.Sreturn (Some e)
      end
  | Token.KW_PRINT ->
      advance st;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      Ast.Sprint e
  | Token.IDENT name -> (
      (* assignment, array store, or expression statement *)
      match fst st.toks.(st.pos + 1) with
      | Token.ASSIGN ->
          advance st;
          advance st;
          let e = parse_expr st in
          expect st Token.SEMI;
          Ast.Sassign (name, e)
      | Token.LBRACKET -> (
          (* could be [g[e] = e2;] or an expression statement starting with
             an index; look for the assignment after the bracketed index *)
          let save = st.pos in
          advance st;
          advance st;
          let idx = parse_expr st in
          expect st Token.RBRACKET;
          match peek st with
          | Token.ASSIGN ->
              advance st;
              let e = parse_expr st in
              expect st Token.SEMI;
              Ast.Sstore (name, idx, e)
          | _ ->
              st.pos <- save;
              let e = parse_expr st in
              expect st Token.SEMI;
              Ast.Sexpr e)
      | _ ->
          let e = parse_expr st in
          expect st Token.SEMI;
          Ast.Sexpr e)
  | t -> error st "expected statement but found %s" (Token.to_string t)

and parse_block st =
  expect st Token.LBRACE;
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

let parse_params st =
  expect st Token.LPAREN;
  if peek st = Token.RPAREN then begin advance st; [] end
  else
    let rec go acc =
      let acc = expect_ident st :: acc in
      if peek st = Token.COMMA then begin advance st; go acc end
      else begin
        expect st Token.RPAREN;
        List.rev acc
      end
    in
    go []

let parse_top st : Ast.top =
  match peek st with
  | Token.KW_VAR -> (
      advance st;
      let name = expect_ident st in
      match peek st with
      | Token.LBRACKET ->
          advance st;
          let size = expect_int st in
          expect st Token.RBRACKET;
          let init =
            if peek st = Token.ASSIGN then begin
              advance st;
              expect st Token.LBRACE;
              let rec go acc =
                let acc = expect_int st :: acc in
                if peek st = Token.COMMA then begin advance st; go acc end
                else begin
                  expect st Token.RBRACE;
                  List.rev acc
                end
              in
              if peek st = Token.RBRACE then begin advance st; [] end
              else go []
            end
            else []
          in
          expect st Token.SEMI;
          Ast.Darray (name, size, init)
      | Token.ASSIGN ->
          advance st;
          let v = expect_int st in
          expect st Token.SEMI;
          Ast.Dglobal (name, v)
      | _ ->
          expect st Token.SEMI;
          Ast.Dglobal (name, 0))
  | Token.KW_EXPORT | Token.KW_PROC ->
      let p_export =
        if peek st = Token.KW_EXPORT then begin advance st; true end
        else false
      in
      let p_line = line st in
      expect st Token.KW_PROC;
      let p_name = expect_ident st in
      let p_params = parse_params st in
      let p_body = parse_block st in
      Ast.Dproc { Ast.p_name; p_params; p_body; p_export; p_line }
  | Token.KW_EXTERN ->
      advance st;
      expect st Token.KW_PROC;
      let name = expect_ident st in
      let params = parse_params st in
      expect st Token.SEMI;
      Ast.Dextern (name, List.length params)
  | t ->
      error st "expected top-level declaration but found %s"
        (Token.to_string t)

(** [parse src] lexes and parses a full compilation unit. *)
let parse src : Ast.program =
  let toks =
    Chow_obs.Trace.span "lex" (fun () -> Array.of_list (Lexer.tokenize src))
  in
  Chow_obs.Trace.span "parse" (fun () ->
      let st = { toks; pos = 0 } in
      let rec go acc =
        if peek st = Token.EOF then List.rev acc else go (parse_top st :: acc)
      in
      go [])
