(** Fixed-size domain pool.  See the interface for the contract.

    One shared FIFO of thunks feeds the worker domains.  [parallel_map]
    enqueues its batch and then has the calling domain help drain the
    queue until the batch settles, so a task may itself call
    [parallel_map] on the same pool without risking deadlock: every
    waiter either executes queued work or waits on tasks that are
    actively running on some domain. *)

type t = {
  size : int;  (** total parallelism, caller's lane included *)
  mutex : Mutex.t;  (** protects [queue] and [stopping] *)
  work : Condition.t;  (** queue grew, or shutdown began *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* stopping and drained *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let create ?(force = false) n =
  let sequential =
    n <= 1 || ((not force) && Domain.recommended_domain_count () = 1)
  in
  let t =
    {
      size = (if sequential then 1 else n);
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  if not sequential then
    t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let parallel_map t xs f =
  if t.size <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
        let items = Array.of_list xs in
        let n = Array.length items in
        let results = Array.make n None in
        (* batch-local completion state *)
        let bm = Mutex.create () in
        let settled = Condition.create () in
        let remaining = ref n in
        let error = ref None in
        let run_task i () =
          (try results.(i) <- Some (f items.(i))
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Mutex.lock bm;
             (match !error with
             | Some (j, _, _) when j < i -> ()
             | _ -> error := Some (i, e, bt));
             Mutex.unlock bm);
          Mutex.lock bm;
          decr remaining;
          if !remaining = 0 then Condition.broadcast settled;
          Mutex.unlock bm
        in
        Mutex.lock t.mutex;
        for i = 0 to n - 1 do
          Queue.add (run_task i) t.queue
        done;
        Condition.broadcast t.work;
        Mutex.unlock t.mutex;
        (* the caller's lane: drain queued work (ours or anyone's) while the
           batch is outstanding, then wait for the in-flight remainder *)
        let rec help () =
          Mutex.lock bm;
          let done_ = !remaining = 0 in
          Mutex.unlock bm;
          if not done_ then begin
            Mutex.lock t.mutex;
            let task = Queue.take_opt t.queue in
            Mutex.unlock t.mutex;
            match task with
            | Some task ->
                task ();
                help ()
            | None ->
                Mutex.lock bm;
                while !remaining > 0 do
                  Condition.wait settled bm
                done;
                Mutex.unlock bm
          end
        in
        help ();
        (match !error with
        | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        Array.to_list
          (Array.map
             (function Some r -> r | None -> assert false)
             results)

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?force n f =
  let t = create ?force n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
