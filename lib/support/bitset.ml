type t = { len : int; words : int array }

let bits_per_word = Sys.int_size

let words_for len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; words = Array.make (max 1 (words_for len)) 0 }

let length s = s.len

let copy s = { len = s.len; words = Array.copy s.words }

let check s i =
  if i < 0 || i >= s.len then invalid_arg "Bitset: index out of range"

let set s i =
  check s i;
  s.words.(i / bits_per_word) <-
    s.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let clear s i =
  check s i;
  s.words.(i / bits_per_word) <-
    s.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let equal a b =
  a.len = b.len && Array.for_all2 (fun x y -> x = y) a.words b.words

(* branch-free SWAR popcount, split into 32-bit halves so every mask fits
   OCaml's 63-bit immediate integers *)
let popcount32 w =
  let w = w - ((w lsr 1) land 0x55555555) in
  let w = (w land 0x33333333) + ((w lsr 2) land 0x33333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F in
  (* the multiply carries byte sums past bit 31 in 63-bit arithmetic, so
     mask the result down to the one byte that holds the total *)
  ((w * 0x01010101) lsr 24) land 0xFF

let popcount w = popcount32 (w land 0xFFFFFFFF) + popcount32 (w lsr 32)

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let same_len a b =
  if a.len <> b.len then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_len dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into dst src =
  same_len dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let diff_into dst src =
  same_len dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let union a b = let r = copy a in union_into r b; r
let inter a b = let r = copy a in inter_into r b; r
let diff a b = let r = copy a in diff_into r b; r

let assign dst src =
  same_len dst src;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let clear_all s = Array.fill s.words 0 (Array.length s.words) 0

let set_all s =
  let full = s.len / bits_per_word in
  let rest = s.len mod bits_per_word in
  Array.fill s.words 0 full (-1);
  if rest > 0 then s.words.(full) <- s.words.(full) lor ((1 lsl rest) - 1)

let disjoint a b =
  same_len a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let subset a b =
  same_len a b;
  let n = Array.length a.words in
  let rec go i =
    i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

(* number of trailing zeros of a one-bit word *)
let ntz_pow2 b = popcount (b - 1)

let iter f s =
  for wi = 0 to Array.length s.words - 1 do
    let w = ref s.words.(wi) in
    if !w <> 0 then begin
      let base = wi * bits_per_word in
      while !w <> 0 do
        let b = !w land - !w in
        f (base + ntz_pow2 b);
        w := !w land (!w - 1)
      done
    end
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list len xs =
  let s = create len in
  List.iter (set s) xs;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
