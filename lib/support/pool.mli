(** Fixed-size domain pool for data-parallel compiler passes.

    A pool owns [size - 1] worker domains (the caller is the remaining
    lane) that drain a shared task queue.  [parallel_map] preserves input
    order, propagates the first (lowest-index) exception raised by a task,
    and degrades to plain [List.map] when the pool is sequential —
    requested size at most 1, or a single-core host (unless [force]d).

    Nested use is safe: a task running on a worker may itself call
    [parallel_map] on the same pool.  The nested caller helps drain the
    queue instead of blocking, so the pool never deadlocks on its own
    work. *)

type t

(** [create ?force n] is a pool of total parallelism [n] ([n - 1] worker
    domains).  [n <= 1] or [Domain.recommended_domain_count () = 1] gives
    a sequential pool with no workers; [~force:true] spawns the workers
    regardless of the host's core count (used by tests to exercise the
    concurrent path). *)
val create : ?force:bool -> int -> t

(** Total parallelism, including the caller's lane: [size t >= 1]. *)
val size : t -> int

(** [parallel_map t xs f] is [List.map f xs], evaluated by up to [size t]
    domains.  Results arrive in input order.  If any [f x] raises, the
    exception of the lowest-index failing element is re-raised in the
    caller (with its backtrace) after the whole batch has settled. *)
val parallel_map : t -> 'a list -> ('a -> 'b) -> 'b list

(** [shutdown t] joins the worker domains.  Idempotent; the pool degrades
    to sequential afterwards. *)
val shutdown : t -> unit

(** [with_pool ?force n f] runs [f] over a fresh pool and shuts it down,
    also on exception. *)
val with_pool : ?force:bool -> int -> (t -> 'a) -> 'a
