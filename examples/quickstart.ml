(** Quickstart: compile a Pawn program, run it in the simulator, and watch
    inter-procedural allocation remove the register-usage penalty at the
    procedure calls.

    Run with: [dune exec examples/quickstart.exe] *)

module Config = Chow_compiler.Config
module Pipeline = Chow_compiler.Pipeline
module Sim = Chow_sim.Sim

(* A call-intensive little program: [average] keeps values live across two
   calls to [scale], which is exactly where caller/callee-saved traffic
   appears under per-procedure allocation. *)
let source =
  {|
proc scale(x, factor) {
  return x * factor + x / 2;
}

proc average(a, b) {
  var sa = scale(a, 3);
  var sb = scale(b, 5);
  return (sa + sb) / 2;
}

proc main() {
  var i = 0;
  var total = 0;
  while (i < 100) {
    total = total + average(i, i + 7);
    i = i + 1;
  }
  print(total);
}
|}

let describe (config : Config.t) =
  let compiled = Pipeline.compile_source config (Pipeline.Src source) in
  let o = Pipeline.run compiled in
  Format.printf "%-8s output=%a  cycles=%d  scalar loads/stores=%d/%d@."
    config.Config.name
    (Format.pp_print_list Format.pp_print_int)
    o.Sim.output o.Sim.cycles o.Sim.scalar_loads o.Sim.scalar_stores;
  o

let () =
  Format.printf "Compiling under the paper's baseline and -O3+shrink-wrap:@.";
  let base = describe Config.baseline in
  let best = describe Config.o3_sw in
  let reduction b v =
    100. *. float_of_int (b - v) /. float_of_int (max 1 b)
  in
  Format.printf
    "@.Inter-procedural allocation removed %.1f%% of the cycles and %.1f%% \
     of the scalar memory traffic —@.the same program, the same machine, \
     just smarter placement of registers across calls.@."
    (reduction base.Sim.cycles best.Sim.cycles)
    (reduction
       (base.Sim.scalar_loads + base.Sim.scalar_stores)
       (best.Sim.scalar_loads + best.Sim.scalar_stores))
