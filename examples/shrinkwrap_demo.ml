(** Shrink-wrap demo: a procedure whose register-hungry work sits on a cold
    path.  The ordinary convention saves callee-saved registers at the entry
    on every invocation; shrink-wrapping moves the saves into the cold
    region, so the hot path runs save-free (§5).

    The demo prints the generated assembly of the procedure both ways, and
    then measures the difference dynamically.

    Run with: [dune exec examples/shrinkwrap_demo.exe] *)

module Ir = Chow_ir.Ir
module Machine = Chow_machine.Machine
module Config = Chow_compiler.Config
module Pipeline = Chow_compiler.Pipeline
module Ipra = Chow_core.Ipra
module Sim = Chow_sim.Sim

let source =
  {|
proc expensive(a, b, c, d, e) {
  return a + b * c - d + e * a;
}

proc process(x) {
  if (x % 100 == 0) {
    // cold path, taken 1% of the time: many values live across a call
    var a = x + 1;
    var b = x + 2;
    var c = x + 3;
    var d = x + 4;
    var e = x + 5;
    var r = expensive(a, b, c, d, e);
    return r + a + b + c + d + e;
  }
  return x * 2;    // hot path
}

proc main() {
  var i = 0;
  var total = 0;
  while (i < 2000) {
    total = total + process(i);
    i = i + 1;
  }
  print(total);
}
|}

let dump_process (config : Config.t) =
  let compiled = Pipeline.compile_source config (Pipeline.Src source) in
  let layout, _, _ = Chow_codegen.Link.layout (Pipeline.ir compiled) in
  List.iter
    (fun (alloc : Ipra.t) ->
      List.iter
        (fun (name, res) ->
          if name = "process" then begin
            let frame = Chow_codegen.Frame.build res in
            let code = Chow_codegen.Emit.emit_proc ~layout res frame in
            Format.printf "---- process under %s ----@.%a@.@."
              config.Config.name Chow_codegen.Asm.pp_proc_code code
          end)
        alloc.Ipra.results)
    (Pipeline.allocs compiled);
  Pipeline.run compiled

let () =
  let base = dump_process Config.baseline in
  let sw = dump_process Config.o2_sw in
  Format.printf
    "Look for the `sw ... # save` instructions: without shrink-wrap they@.\
     sit at the top of L0 and run on all 2000 invocations; with it they@.\
     move into the cold block and run only 20 times.@.@.";
  Format.printf "%-10s %10s %18s@." "config" "cycles" "save/restore ops";
  Format.printf "%-10s %10d %18d@." "-O2" base.Sim.cycles
    (base.Sim.save_loads + base.Sim.save_stores);
  Format.printf "%-10s %10d %18d@." "-O2+sw" sw.Sim.cycles
    (sw.Sim.save_loads + sw.Sim.save_stores);
  Format.printf "@.cycles saved by shrink-wrapping alone: %d (%.1f%%)@."
    (base.Sim.cycles - sw.Sim.cycles)
    (100.
    *. float_of_int (base.Sim.cycles - sw.Sim.cycles)
    /. float_of_int base.Sim.cycles)
