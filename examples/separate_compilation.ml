(** Separate compilation (§3, §7): two Pawn units compiled independently —
    the allocator sees one call graph at a time, cross-unit calls go
    through [extern] declarations under the default linkage convention —
    then linked at the assembly level.  Inside each unit, IPRA still runs
    at full strength.

    Run with: [dune exec examples/separate_compilation.exe] *)

module Config = Chow_compiler.Config
module Pipeline = Chow_compiler.Pipeline
module Ipra = Chow_core.Ipra
module Sim = Chow_sim.Sim

(* the "library" unit: a small string-less formatting core *)
let unit_mathlib =
  {|
proc gcd_step(a, b) { return a % b; }

export proc gcd(a, b) {
  while (b != 0) {
    var t = gcd_step(a, b);
    a = b;
    b = t;
  }
  return a;
}

export proc lcm(a, b) {
  return a / gcd(a, b) * b;
}
|}

(* the application unit *)
let unit_app =
  {|
extern proc gcd(a, b);
extern proc lcm(a, b);

proc sum_of_gcds(n) {
  var s = 0;
  var i = 1;
  while (i <= n) {
    s = s + gcd(n, i);
    i = i + 1;
  }
  return s;
}

proc main() {
  print(gcd(1071, 462));
  print(lcm(4, 6));
  print(sum_of_gcds(30));
}
|}

let () =
  Format.printf "compiling two units separately and linking...@.";
  let compiled =
    Pipeline.compile_source Config.o3_sw (Pipeline.Srcs [ unit_app; unit_mathlib ])
  in
  let o = Pipeline.run compiled in
  Format.printf "output: %a@.@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    o.Sim.output;
  List.iteri
    (fun i (alloc : Ipra.t) ->
      Format.printf "unit %d call graph:@." (i + 1);
      List.iter
        (fun name ->
          Format.printf "  %-14s %s@." name
            (if Chow_core.Callgraph.is_open alloc.Ipra.callgraph name
             then "open (visible across units or recursive)"
             else "closed (full IPRA treatment)"))
        (Chow_core.Callgraph.processing_order
           alloc.Ipra.callgraph))
    (Pipeline.allocs compiled);
  Format.printf
    "@.gcd and lcm are exported, so they are open: their callers in the@.\
     other unit use the default convention.  gcd_step and sum_of_gcds stay@.\
     closed and enjoy full inter-procedural treatment within their units —@.\
     exactly the co-existence of §3.@."
