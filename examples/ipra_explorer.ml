(** IPRA explorer: walks a program's call graph the way the one-pass
    allocator does — depth-first, callees before callers — showing the
    open/closed classification of §3, the register-usage masks each closed
    procedure publishes, and the parameter registers negotiated under §4.

    Run with: [dune exec examples/ipra_explorer.exe] *)

module Ir = Chow_ir.Ir
module Machine = Chow_machine.Machine
module Config = Chow_compiler.Config
module Pipeline = Chow_compiler.Pipeline
module Ipra = Chow_core.Ipra
module Usage = Chow_core.Usage
module Callgraph = Chow_core.Callgraph
module Alloc = Chow_core.Alloc_types

(* one of everything: a closed chain, recursion, an address-taken
   procedure, and an exported entry point *)
let source =
  {|
var dispatch;

proc tiny(x) { return x + 1; }

proc helper(a, b) {
  var t = tiny(a) * tiny(b);
  return t - a;
}

proc fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

proc hook(x) { return helper(x, x + 1); }

export proc api(n) { return helper(n, 2 * n); }

proc main() {
  dispatch = &hook;
  print(helper(3, 4));
  print(fib(10));
  print(api(5));
  print(dispatch(7));
}
|}

let pp_param_loc ppf = function
  | Alloc.Preg r -> Format.pp_print_string ppf (Machine.name r)
  | Alloc.Pstack -> Format.pp_print_string ppf "stack"

let () =
  let compiled = Pipeline.compile_source Config.o3_sw (Pipeline.Src source) in
  let o = Pipeline.run compiled in
  Format.printf "program output: %a@.@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    o.Chow_sim.Sim.output;
  List.iter
    (fun (alloc : Ipra.t) ->
      let cg = alloc.Ipra.callgraph in
      Format.printf
        "processing order (depth-first, callees before callers):@.";
      List.iteri
        (fun i name -> Format.printf "  %d. %s@." (i + 1) name)
        (Callgraph.processing_order cg);
      Format.printf "@.";
      List.iter
        (fun (name, (res : Alloc.result)) ->
          let why_open =
            if not res.Alloc.r_open then "closed"
            else if name = "main" || name = "api" then
              "open: externally visible"
            else if name = "fib" then "open: recursive"
            else if name = "hook" then "open: address taken"
            else "open"
          in
          Format.printf "@[<v 2>%s — %s@," name why_open;
          (match Usage.find alloc.Ipra.usage name with
          | Some info ->
              Format.printf "publishes mask %a@," Machine.Set.pp
                info.Usage.mask;
              Format.printf "expects parameters in: %a@,"
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                   pp_param_loc)
                info.Usage.param_locs
          | None ->
              Format.printf
                "publishes nothing: callers assume the default convention@,");
          Format.printf "locally saved registers: %s@,"
            (if res.Alloc.r_contract_saves = [] then "(none)"
             else
               String.concat ", "
                 (List.map Machine.name res.Alloc.r_contract_saves));
          Format.printf "@]@.")
        alloc.Ipra.results)
    (Pipeline.allocs compiled);
  Format.printf
    "Note how the helpers publish small masks, letting every caller keep@.\
     values in the untouched registers across the calls, while fib, hook@.\
     and api fall back to the callee-saved contract (§3).@."
