(** Profile feedback end to end: the capability the paper closes with
    ("the feedback of profile data to the register allocator is a
    capability that we plan to add in the future", §8).

    The static frequency estimate weights a block by 10^loop-depth, so a
    rarely-executed inner loop can outrank hot straight-line code when
    registers are scarce.  This example compiles such a program, lets the
    simulator double as the profiler, recompiles with measured block
    frequencies, and prints what changed — including where the contested
    variables ended up each time.

    Run with: [dune exec examples/profile_feedback.exe] *)

module Ir = Chow_ir.Ir
module Machine = Chow_machine.Machine
module Config = Chow_compiler.Config
module Pipeline = Chow_compiler.Pipeline
module Ipra = Chow_core.Ipra
module Alloc = Chow_core.Alloc_types
module Sim = Chow_sim.Sim

let source =
  {|
proc helper(x) { return x * 3 + 1; }

proc f(x, cold) {
  var a = x * 7;                  // hot: live across the helper calls...
  var b = x + 13;
  var r = helper(a) + helper(b);
  if (cold == 1) {                // ...but this loop looks 10x hotter
    var s = 0;
    var i = 0;
    while (i < 3) {
      s = s + helper(x + i) * (x - i);
      i = i + 1;
    }
    r = r + s;
  }
  r = r + a * b + a - b;
  return r + a - b;
}

proc main() {
  var n = 0;
  var acc = 0;
  while (n < 2000) {
    var cold = 0;
    if (n == 777) { cold = 1; }   // the loop runs once in 2000 calls
    acc = acc + f(n, cold);
    n = n + 1;
  }
  print(acc);
}
|}

(* a scarce register file, so the allocator must choose whom to starve *)
let config =
  {
    Config.name = "-O3+sw/small";
    ipra = true;
    shrinkwrap = true;
    machine = Machine.restrict ~n_caller:2 ~n_callee:1 ~n_param:2;
    jobs = 1;
    alloc = Chow_core.Allocator.Chow;
  }

let location_of (c : Pipeline.compiled) proc var =
  List.find_map
    (fun (alloc : Ipra.t) ->
      match Ipra.find alloc proc with
      | None -> None
      | Some res ->
          let found = ref None in
          Array.iteri
            (fun v k ->
              match k with
              | Ir.Vlocal n when n = var -> (
                  match res.Alloc.r_assignment.(v) with
                  | Alloc.Lreg r -> found := Some (Machine.name r)
                  | Alloc.Lstack -> found := Some "memory")
              | Ir.Vlocal _ | Ir.Vparam _ | Ir.Vtemp -> ())
            res.Alloc.r_proc.Ir.vreg_kinds;
          !found)
    (Pipeline.allocs c)
  |> Option.value ~default:"?"

let show label (c : Pipeline.compiled) (o : Sim.outcome) =
  Format.printf "%-24s cycles=%-8d scalar ld/st=%-6d a->%s b->%s s->%s@."
    label o.Sim.cycles
    (o.Sim.scalar_loads + o.Sim.scalar_stores)
    (location_of c "f" "a") (location_of c "f" "b") (location_of c "f" "s")

let () =
  Format.printf
    "3 allocatable registers; the cold loop's variables statically\n\
     outweigh the hot region's a and b:@.@.";
  let static = Pipeline.compile_source config (Pipeline.Src source) in
  let static_o = Pipeline.run static in
  show "static weights" static static_o;
  let profiled, training = Pipeline.compile_with_profile config source in
  let profiled_o = Pipeline.run profiled in
  show "profile feedback" profiled profiled_o;
  assert (static_o.Sim.output = profiled_o.Sim.output);
  Format.printf
    "@.training run: %d cycles, %d basic blocks measured@."
    training.Sim.cycles
    (List.length training.Sim.block_counts);
  Format.printf
    "cycles recovered by feedback: %d (%.1f%%)@."
    (static_o.Sim.cycles - profiled_o.Sim.cycles)
    (100.
    *. float_of_int (static_o.Sim.cycles - profiled_o.Sim.cycles)
    /. float_of_int static_o.Sim.cycles)
